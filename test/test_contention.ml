(* Contention management, budgets and handler exception safety. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module Map = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

let some_retries = Some 5

(* A transaction body that always conflicts (transparent retry request):
   the deterministic way to exhaust a budget. *)
let always_conflict () = ignore (Stm.retry_now ())

let test_budget_max_retries () =
  match
    Stm.atomic ~budget:{ Stm.max_retries = some_retries; max_seconds = None }
      always_conflict
  with
  | () -> Alcotest.fail "budgeted hopeless transaction returned"
  | exception Stm.Starved { attempts; elapsed } ->
      Alcotest.(check int) "max_retries 5 = 6 executions" 6 attempts;
      Alcotest.(check bool) "no deadline, elapsed unset" true (elapsed = 0.)

let test_budget_deadline () =
  let t0 = Unix.gettimeofday () in
  match
    Stm.atomic
      ~budget:{ Stm.max_retries = None; max_seconds = Some 0.02 }
      always_conflict
  with
  | () -> Alcotest.fail "deadlined hopeless transaction returned"
  | exception Stm.Starved { attempts; elapsed } ->
      Alcotest.(check bool) "some attempts happened" true (attempts >= 1);
      Alcotest.(check bool) "deadline respected" true (elapsed >= 0.02);
      Alcotest.(check bool) "did not run far past the deadline" true
        (Unix.gettimeofday () -. t0 < 2.)

let test_budget_not_raised_on_success () =
  let v = Tvar.make 0 in
  Stm.atomic ~budget:{ Stm.max_retries = Some 0; max_seconds = None } (fun () ->
      Tvar.set v 1);
  Alcotest.(check int) "committed first try under zero-retry budget" 1
    (Tvar.get v)

let test_on_starved_fallback () =
  let v = Tvar.make 0 in
  let r =
    Stm.atomic
      ~budget:{ Stm.max_retries = Some 2; max_seconds = None }
      ~on_starved:(fun () ->
        Stm.serialised (fun () ->
            Tvar.set v 7;
            "fallback"))
      (fun () ->
        ignore (Stm.retry_now ());
        "unreachable")
  in
  Alcotest.(check string) "fallback ran" "fallback" r;
  Alcotest.(check int) "fallback committed" 7 (Tvar.get v);
  Alcotest.(check int) "fallback released the commit region" 0
    (Stm.regions_held ())

let test_starved_counted () =
  Stm.reset_stats ();
  (try
     Stm.atomic ~budget:{ Stm.max_retries = Some 1; max_seconds = None }
       always_conflict
   with Stm.Starved _ -> ());
  Alcotest.(check int) "stat_starved" 1 (Stm.global_stats ()).starved

let test_serialised_basic () =
  let v = Tvar.make 10 in
  let r = Stm.serialised (fun () -> Tvar.modify v succ; Tvar.get v) in
  Alcotest.(check int) "serialised result" 11 r;
  Alcotest.(check int) "serialised committed" 11 (Tvar.get v);
  Alcotest.(check int) "regions released" 0 (Stm.regions_held ());
  (* Inside a transaction, [serialised] is just the enclosing transaction. *)
  let r = Stm.atomic (fun () -> Stm.serialised (fun () -> Tvar.get v)) in
  Alcotest.(check int) "nested serialised reads through" 11 r

let test_policies_commit () =
  (* Every policy must still commit ordinary contended work. *)
  List.iter
    (fun policy ->
      let v = Tvar.make 0 in
      let doms =
        List.init 3 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 500 do
                  Stm.atomic ~policy (fun () -> Tvar.modify v succ)
                done))
      in
      List.iter Domain.join doms;
      Alcotest.(check int)
        ("counter under " ^ Stm.Contention.name policy)
        1500 (Tvar.get v))
    [ Stm.Contention.default; Stm.Contention.Karma; Stm.Contention.Greedy ]

let test_global_policy () =
  Stm.Contention.set_global Stm.Contention.Greedy;
  Alcotest.(check string) "global set" "greedy"
    (Stm.Contention.name (Stm.Contention.global ()));
  let v = Tvar.make 0 in
  Stm.atomic (fun () -> Tvar.set v 1);
  Alcotest.(check int) "commits under global greedy" 1 (Tvar.get v);
  Stm.Contention.set_global Stm.Contention.default;
  Alcotest.(check string) "global restored" "backoff"
    (Stm.Contention.name (Stm.Contention.global ()))

let test_retry_histogram () =
  Stm.reset_stats ();
  let v = Tvar.make 0 in
  (* Commits with exactly 0 and exactly 2 retries under the default
     policy. *)
  Stm.atomic (fun () -> Tvar.set v 1);
  let tries = ref 0 in
  Stm.atomic (fun () ->
      incr tries;
      if !tries <= 2 then ignore (Stm.retry_now ());
      Tvar.set v 2);
  let hist = List.assoc "backoff" (Stm.retry_histogram ()) in
  Alcotest.(check int) "bucket 0 (no retries)" 1 hist.(0);
  Alcotest.(check int) "bucket 2 (2 retries)" 1 hist.(2);
  Alcotest.(check int) "total completions" 2
    (Array.fold_left ( + ) 0 hist);
  Alcotest.(check bool) "other policies untouched" true
    (Array.for_all (( = ) 0) (List.assoc "greedy" (Stm.retry_histogram ())))

let test_remote_abort_outcomes () =
  Stm.reset_stats ();
  (* Too_late: the auto-commit handle is already committed. *)
  let h = Stm.current () in
  Alcotest.(check bool) "too late on committed" true
    (Stm.remote_abort_outcome h = Stm.Too_late);
  Alcotest.(check bool) "remote_abort mirrors too-late as false" false
    (Stm.remote_abort h);
  (* Delivered: abort a live transaction parked in another domain. *)
  let mailbox = Atomic.make None in
  let outcome = Atomic.make None in
  let d =
    Domain.spawn (fun () ->
        let v = Tvar.make 0 in
        Stm.atomic (fun () ->
            Tvar.modify v succ;
            if Tvar.get v = 1 then begin
              Atomic.set mailbox (Some (Stm.current ()));
              (* Park until the abort is delivered (we are then retried)
                 or a bound elapses. *)
              let spins = ref 0 in
              while Atomic.get outcome = None && !spins < 50_000_000 do
                incr spins
              done
            end))
  in
  let rec wait () =
    match Atomic.get mailbox with Some h -> h | None -> wait ()
  in
  let victim = wait () in
  let o = Stm.remote_abort_outcome victim in
  Atomic.set outcome (Some o);
  Domain.join d;
  Alcotest.(check bool) "delivered to live victim" true (o = Stm.Delivered);
  let s = Stm.global_stats () in
  Alcotest.(check int) "delivered counted" 1 s.remote_aborts_delivered;
  Alcotest.(check int) "late counted (both probes above)" 2 s.remote_aborts_late;
  Alcotest.(check int) "victim retry counted" 1 s.remote_aborts

(* ---------------- forced starvation scenario ---------------- *)

let test_greedy_starvation_freedom () =
  Stm.reset_stats ();
  let r =
    Harness.Starvation.run ~policy:Stm.Contention.Greedy ~rounds:15 ~keys:32
      ~short_domains:3 ()
  in
  Alcotest.(check int) "all long-writer rounds completed" r.rounds r.completed;
  Alcotest.(check int) "no starvation under greedy" 0 r.starved;
  Alcotest.(check int) "stat_starved = 0" 0 (Stm.global_stats ()).starved

let test_backoff_budget_accounting () =
  (* Same schedule under plain backoff with a budget: every round either
     completes or is counted starved — nothing is lost or wedged. *)
  let r =
    Harness.Starvation.run ~policy:Stm.Contention.default
      ~budget:{ Stm.max_retries = Some 8; max_seconds = None }
      ~rounds:10 ~keys:32 ~short_domains:3 ()
  in
  Alcotest.(check int) "completed + starved = rounds" r.rounds
    (r.completed + r.starved);
  Alcotest.(check int) "no region leaked either way" 0 (Stm.regions_held ())

let suites =
  [
    ( "stm.contention",
      [
        Alcotest.test_case "budget max_retries -> Starved" `Quick
          test_budget_max_retries;
        Alcotest.test_case "budget deadline -> Starved" `Quick
          test_budget_deadline;
        Alcotest.test_case "budget unused on success" `Quick
          test_budget_not_raised_on_success;
        Alcotest.test_case "on_starved fallback (serialised)" `Quick
          test_on_starved_fallback;
        Alcotest.test_case "starvation counted" `Quick test_starved_counted;
        Alcotest.test_case "serialised" `Quick test_serialised_basic;
        Alcotest.test_case "all policies commit" `Quick test_policies_commit;
        Alcotest.test_case "global policy" `Quick test_global_policy;
        Alcotest.test_case "retry histogram" `Quick test_retry_histogram;
        Alcotest.test_case "remote abort outcomes" `Quick
          test_remote_abort_outcomes;
      ] );
    ( "stm.starvation",
      [
        Alcotest.test_case "greedy: long writer completes, starved=0" `Quick
          test_greedy_starvation_freedom;
        Alcotest.test_case "backoff+budget: rounds accounted" `Quick
          test_backoff_budget_accounting;
      ] );
  ]
