(* Multicore hot-path tests: exactness of the sharded (per-domain,
   lazily aggregated) statistics under a multi-domain workload, the
   read-only commit fast path (clock untouched, serializability and chaos
   injection preserved), uniqueness of block-leased transaction ids, the
   one-bump-per-writing-commit clock invariant, and the allocation bound
   the pooled descriptors buy the retry loop. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

(* Sharded stats must equal the exact event counts of a deterministic
   8-domain mixed workload: each domain performs a known number of
   writing commits, read-only commits and explicit aborts on private
   tvars (no conflicts possible), so the aggregate is exact — any lost or
   double-counted shard increment shows up as an inequality. *)
let test_sharded_stats_exact () =
  Stm.reset_stats ();
  let domains = 8 and writes = 150 and reads = 100 and aborts = 25 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            let tv = Tvar.make 0 in
            for i = 1 to writes do
              Stm.atomic (fun () -> Tvar.set tv i)
            done;
            for _ = 1 to reads do
              Stm.atomic (fun () -> ignore (Tvar.get tv))
            done;
            for _ = 1 to aborts do
              try Stm.atomic (fun () -> Stm.self_abort ())
              with Stm.Aborted -> ()
            done))
  in
  List.iter Domain.join ds;
  let s = Stm.global_stats () in
  Alcotest.(check int) "commits" (domains * (writes + reads)) s.commits;
  Alcotest.(check int) "read-only commits" (domains * reads)
    s.read_only_commits;
  Alcotest.(check int) "explicit aborts" (domains * aborts) s.explicit_aborts;
  Alcotest.(check int) "conflict aborts" 0 s.conflict_aborts;
  Alcotest.(check int) "clock bumps" (domains * writes) s.clock_bumps

(* A read-only atomic must not advance the global clock and must be
   counted as a read-only commit — for plain tvar reads and for
   collection getters certifying emptiness of their store buffers. *)
let test_ro_fast_path_no_clock () =
  Stm.reset_stats ();
  let tv = Tvar.make 41 in
  let m = IM.create () in
  ignore (IM.put m 1 10);
  let s0 = Stm.global_stats () in
  for _ = 1 to 50 do
    Stm.atomic (fun () -> ignore (Tvar.get tv))
  done;
  Stm.atomic (fun () ->
      ignore (IM.find m 1);
      ignore (IM.size m);
      ignore (IM.mem m 2));
  let s1 = Stm.global_stats () in
  Alcotest.(check int) "no clock bumps" 0 (s1.clock_bumps - s0.clock_bumps);
  Alcotest.(check int) "all read-only" 51
    (s1.read_only_commits - s0.read_only_commits);
  Alcotest.(check int) "counted as commits too" 51 (s1.commits - s0.commits);
  (* A writing collection transaction must NOT take the fast path. *)
  let s2 = Stm.global_stats () in
  Stm.atomic (fun () -> ignore (IM.put m 2 20));
  let s3 = Stm.global_stats () in
  Alcotest.(check int) "writer not read-only" 0
    (s3.read_only_commits - s2.read_only_commits)

(* Serializability on the fast path: a read-only transaction whose read
   set was invalidated by a concurrent committed write must abort and
   retry, observing the new value. *)
let test_ro_fast_path_aborts_on_conflict () =
  let tv1 = Tvar.make 0 and tv2 = Tvar.make 7 in
  let attempts = ref 0 in
  let v =
    Stm.atomic (fun () ->
        incr attempts;
        let a = Tvar.get tv1 in
        if !attempts = 1 then
          (* Invalidate the recorded read of tv1 from another domain
             while this (read-only) transaction is still running. *)
          Domain.join (Domain.spawn (fun () -> Tvar.set tv1 100));
        let b = Tvar.get tv2 in
        a + b)
  in
  Alcotest.(check bool) "retried at least once" true (!attempts >= 2);
  Alcotest.(check int) "read the committed write" 107 v

(* Chaos injection must keep firing inside read-only commits: the
   Chaos_in_commit hook point is on the fast path too. *)
let test_ro_fast_path_chaos_fires () =
  let in_commit = ref 0 in
  Stm.Chaos.set_hook
    (Some
       (function Stm.Chaos.Chaos_in_commit -> incr in_commit | _ -> ()));
  Fun.protect
    ~finally:(fun () -> Stm.Chaos.set_hook None)
    (fun () ->
      let tv = Tvar.make 1 in
      Stm.atomic (fun () -> ignore (Tvar.get tv));
      Alcotest.(check int) "hook fired in read-only commit" 1 !in_commit;
      let m = IM.create () in
      ignore (IM.put m 1 1);
      in_commit := 0;
      Stm.atomic (fun () -> ignore (IM.find m 1));
      Alcotest.(check int) "hook fired in semantic read-only commit" 1
        !in_commit)

(* Block-leased transaction ids must stay process-unique across domains,
   including across lease-block boundaries (> 1024 ids per domain). *)
let test_leased_txn_ids_unique () =
  let domains = 4 and per_domain = 1500 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            List.init per_domain (fun _ ->
                Stm.atomic (fun () -> Stm.txn_id (Stm.current ())))))
  in
  let all = List.concat_map Domain.join ds in
  let seen = Hashtbl.create (domains * per_domain) in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "txn id %d unique" id)
        false (Hashtbl.mem seen id);
      Hashtbl.add seen id ())
    all

(* Every writing commit advances the clock exactly once — also under
   multi-domain contention, where a lost CAS is settled by adopting the
   winner's value with a single fetch-and-add rather than re-bumping. *)
let test_one_bump_per_writing_commit () =
  Stm.reset_stats ();
  let domains = 4 and per_domain = 300 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            let tv = Tvar.make 0 in
            for i = 1 to per_domain do
              Stm.atomic (fun () -> Tvar.set tv i)
            done))
  in
  List.iter Domain.join ds;
  let s = Stm.global_stats () in
  Alcotest.(check int) "one bump per writing commit" (domains * per_domain)
    s.clock_bumps;
  Alcotest.(check bool) "adoptions never exceed bumps" true
    (s.clock_cas_retries <= s.clock_bumps)

(* The pooled descriptors make the retry loop allocation-free: after
   warm-up, an empty transaction must allocate far less than a fresh
   descriptor + read/write set would (~150 minor words before pooling).
   The bound is generous to stay robust across compiler versions. *)
let test_retry_loop_allocation_free () =
  for _ = 1 to 100 do
    Stm.atomic ignore
  done;
  let iters = 2000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    Stm.atomic ignore
  done;
  let per = (Gc.minor_words () -. w0) /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "empty atomic allocates %.1f words (< 80)" per)
    true (per < 80.)

let suites =
  [
    ( "stm_scaling",
      [
        Alcotest.test_case "sharded stats exact under 8 domains" `Quick
          test_sharded_stats_exact;
        Alcotest.test_case "read-only commit leaves clock untouched" `Quick
          test_ro_fast_path_no_clock;
        Alcotest.test_case "read-only commit aborts on conflict" `Quick
          test_ro_fast_path_aborts_on_conflict;
        Alcotest.test_case "chaos fires on read-only fast path" `Quick
          test_ro_fast_path_chaos_fires;
        Alcotest.test_case "leased txn ids unique across domains" `Quick
          test_leased_txn_ids_unique;
        Alcotest.test_case "one clock bump per writing commit" `Quick
          test_one_bump_per_writing_commit;
        Alcotest.test_case "pooled retry loop is allocation-free" `Quick
          test_retry_loop_allocation_free;
      ] );
  ]
