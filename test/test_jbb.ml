(* Tests for the SPECjbb2000 model: correctness of each variant's committed
   state, determinism of the simulation, and the Figure 4 ordering. *)

module Machine = Sim.Machine

let small =
  {
    Jbb.Model.default_params with
    Jbb.Model.total_tasks = 128;
    base_work = 600;
    item_work = 40;
  }

let run variant n = Jbb.Sim_jbb.run ~p:small ~variant ~n_cpus:n ()

let test_all_variants_complete () =
  List.iter
    (fun v ->
      let s = run v 4 in
      Alcotest.(check bool)
        (Jbb.Sim_jbb.variant_name v ^ " completes")
        true
        (s.Machine.cycles > 0))
    [ `Java; `Atomos_baseline; `Atomos_open; `Atomos_txcoll ]

let test_all_variants_consistent () =
  (* End-to-end audit: for every variant and several CPU counts, committed
     table contents and counters agree with the number of committed
     operations — no lost or duplicated transactions despite violations,
     retries and open nesting. *)
  List.iter
    (fun v ->
      List.iter
        (fun n ->
          let _, consistent =
            Jbb.Sim_jbb.run_with_audit ~p:small ~variant:v ~n_cpus:n ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s consistent at %d cpus"
               (Jbb.Sim_jbb.variant_name v) n)
            true consistent)
        [ 1; 3; 8 ])
    [ `Java; `Atomos_baseline; `Atomos_open; `Atomos_txcoll ]

let test_deterministic () =
  let s1 = run `Atomos_txcoll 8 in
  let s2 = run `Atomos_txcoll 8 in
  Alcotest.(check int) "same cycles" s1.Machine.cycles s2.Machine.cycles;
  Alcotest.(check int) "same violations" s1.Machine.total_violations
    s2.Machine.total_violations

let test_baseline_violates_more_than_txcoll () =
  let base = run `Atomos_baseline 8 in
  let txc = run `Atomos_txcoll 8 in
  Alcotest.(check bool) "baseline violates heavily" true
    (base.Machine.total_violations > 2 * txc.Machine.total_violations);
  Alcotest.(check bool) "txcoll faster" true
    (txc.Machine.cycles < base.Machine.cycles)

let test_multi_warehouse_baseline_scales () =
  (* Standard SPECjbb2000 (one warehouse per thread) is embarrassingly
     parallel: even the naive whole-operation-transaction Baseline scales,
     confirming that the single-warehouse configuration — not transactions
     per se — is what stresses the system (paper §6.3). *)
  let cycles warehouses n =
    (Jbb.Sim_jbb.run ~p:small ~warehouses ~variant:`Atomos_baseline ~n_cpus:n ())
      .Machine.cycles
  in
  let single_speedup =
    float_of_int (cycles `Single 1) /. float_of_int (cycles `Single 8)
  in
  let multi_speedup =
    float_of_int (cycles `Per_cpu 1) /. float_of_int (cycles `Per_cpu 8)
  in
  Alcotest.(check bool) "multi-warehouse scales" true (multi_speedup > 5.0);
  Alcotest.(check bool) "single warehouse is the bottleneck" true
    (multi_speedup > 1.5 *. single_speedup)

let test_figure4_ordering () =
  let fig = Jbb.Sim_jbb.figure4 ~p:small ~cpus:[ 1; 8 ] () in
  let at label = Option.get (Harness.Figures.value_at fig ~label ~cpus:8) in
  let baseline = at "Atomos Baseline" in
  let opened = at "Atomos Open" in
  let txcoll = at "Atomos Transactional" in
  Alcotest.(check bool) "open >= baseline" true (opened >= baseline *. 0.95);
  Alcotest.(check bool) "transactional beats baseline" true
    (txcoll > baseline *. 1.5);
  Alcotest.(check bool) "transactional beats open" true (txcoll > opened)

(* ---------------- host JBB ---------------- *)

let test_host_jbb_audit () =
  let w = Jbb.Host_jbb.create ~p:small () in
  let new_orders, payments, _, _ =
    Jbb.Host_jbb.run w ~n_domains:2 ~tasks_per_domain:300
  in
  Alcotest.(check bool) "ops ran" true (new_orders > 0 && payments > 0);
  Alcotest.(check bool) "audit passes" true
    (Jbb.Host_jbb.audit w ~new_orders_done:new_orders ~payments_done:payments)

let test_host_jbb_all_variants_consistent () =
  (* Every variant's committed tables must agree with its committed
     operation counts.  For the open-nested variants this implies order IDs
     stayed unique despite retries: a duplicate ID would overwrite an
     existing table row and shrink the table below the audit's expectation. *)
  List.iter
    (fun v ->
      let r =
        Jbb.Host_jbb.run_variant ~p:small ~variant:v ~n_domains:2
          ~tasks_per_domain:250 ()
      in
      Alcotest.(check bool)
        (Jbb.Host_jbb.variant_name v ^ " consistent")
        true r.Jbb.Host_jbb.consistent)
    [ `Lock; `Baseline; `Open; `Txcoll ]

let test_host_jbb_baseline_retries_most () =
  (* Retry counts of two contended runs are scheduling-dependent, so the
     qualitative claim — the txcoll variant retries far less than the
     memory-level baseline — is given a few trials before the test is
     declared failed. *)
  let run v =
    (Jbb.Host_jbb.run_variant ~p:small ~variant:v ~n_domains:2
       ~tasks_per_domain:400 ())
      .Jbb.Host_jbb.retries
  in
  let trial () =
    let baseline = run `Baseline and txcoll = run `Txcoll in
    baseline > 0 && (txcoll * 4 <= baseline || txcoll = 0)
  in
  let rec attempt n = trial () || (n > 1 && attempt (n - 1)) in
  Alcotest.(check bool) "baseline retries heavily, txcoll far less" true
    (attempt 4)

(* ---------------- multi-warehouse JBB ---------------- *)

let multi_small =
  { small with Jbb.Model.base_work = 200; item_work = 20 }

let test_multi_jbb_sequential_audit () =
  (* Single domain, full remote traffic: the audit (table sizes, order
     counters, value conservation) must hold exactly. *)
  let t =
    Jbb.Multi_jbb.create ~p:multi_small ~remote_fraction:1.0 ~warehouses:4 ()
  in
  Alcotest.(check bool) "fresh instance conserves" true
    (Jbb.Multi_jbb.conserved t);
  let r = Jbb.Multi_jbb.run_closed t ~n_domains:1 ~tasks_per_domain:200 in
  Alcotest.(check bool) "ops ran" true
    (r.Jbb.Multi_jbb.new_orders > 0 && r.Jbb.Multi_jbb.payments > 0);
  Alcotest.(check bool) "sequential audit" true r.Jbb.Multi_jbb.consistent

let prop_multi_jbb_conservation =
  (* The ISSUE's headline invariant: across W in {1,4,8} and the whole
     remote-fraction range, concurrent mixed traffic (local and
     cross-warehouse payments, remote-sourced new orders, deliveries
     funded from ytd) keeps total value at zero and the tables in
     agreement with the committed op counts. *)
  let gen =
    QCheck.Gen.(
      triple (oneofl [ 1; 4; 8 ]) (oneofl [ 0.; 0.3; 1.0 ]) (int_range 0 99))
  in
  let arb =
    QCheck.make gen ~print:(fun (w, rf, seed) ->
        Printf.sprintf "warehouses=%d remote_fraction=%g seed=%d" w rf seed)
  in
  QCheck.Test.make ~name:"multi-warehouse conservation under concurrency"
    ~count:12 arb (fun (warehouses, remote_fraction, seed) ->
      let t =
        Jbb.Multi_jbb.create ~p:multi_small ~remote_fraction ~warehouses ()
      in
      let r =
        Jbb.Multi_jbb.run_closed ~seed t ~n_domains:2 ~tasks_per_domain:60
      in
      if not r.Jbb.Multi_jbb.consistent then
        QCheck.Test.fail_reportf
          "audit failed: W=%d rf=%g seed=%d (total_value=%d)" warehouses
          remote_fraction seed
          (Jbb.Multi_jbb.total_value t)
      else true)

let suites =
  [
    ( "jbb.sim",
      [
        Alcotest.test_case "all variants complete" `Quick
          test_all_variants_complete;
        Alcotest.test_case "all variants consistent" `Quick
          test_all_variants_consistent;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "baseline vs txcoll violations" `Quick
          test_baseline_violates_more_than_txcoll;
        Alcotest.test_case "multi-warehouse baseline scales" `Quick
          test_multi_warehouse_baseline_scales;
        Alcotest.test_case "figure 4 ordering" `Slow test_figure4_ordering;
      ] );
    ( "jbb.host",
      [
        Alcotest.test_case "audit" `Quick test_host_jbb_audit;
        Alcotest.test_case "all variants consistent" `Quick
          test_host_jbb_all_variants_consistent;
        Alcotest.test_case "baseline retries most" `Quick
          test_host_jbb_baseline_retries_most;
      ] );
    ( "jbb.multi",
      [
        Alcotest.test_case "sequential audit" `Quick
          test_multi_jbb_sequential_audit;
        QCheck_alcotest.to_alcotest prop_multi_jbb_conservation;
      ] );
  ]
