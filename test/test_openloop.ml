(* Open-loop harness pieces: the Hdr histogram's accuracy contract, the
   admission gate's rejection ledger, the Poisson generator's request
   accounting, and the adaptive controller's minimum-window guard. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module Hdr = Harness.Hdr
module Chaos = Harness.Chaos
module OL = Harness.Openloop
module Admission = Stm.Admission

(* ---------------- Hdr histogram ---------------- *)

let test_hdr_exact_below_64 () =
  (* Values under [sub_count] land in width-1 slots: percentiles are
     exact order statistics, not bucket midpoints. *)
  let h = Hdr.create () in
  for v = 0 to 63 do
    Hdr.record_ns h v
  done;
  Alcotest.(check int) "count" 64 (Hdr.count h);
  Alcotest.(check int) "p50 exact" 31 (Hdr.percentile_ns h 0.50);
  Alcotest.(check int) "p99 exact" 63 (Hdr.percentile_ns h 0.99);
  Alcotest.(check int) "p100 is the max" 63 (Hdr.percentile_ns h 1.0)

(* Log-uniform sample over [1, 5e8] ns — six decades, like a latency
   distribution with a heavy tail. *)
let sample n =
  let rng = Chaos.stream_of_seed 0x4d31 7 in
  Array.init n (fun _ ->
      1 + int_of_float (exp (Chaos.rand_float rng *. log 5e8)))

let exact_percentile sorted q =
  let n = Array.length sorted in
  let rank =
    let r = int_of_float (ceil (q *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  sorted.(rank - 1)

let test_hdr_accuracy () =
  (* The layout guarantees worst-case relative error 1/32 (slot width /
     smallest value in the octave) across the whole range; check the
     reported percentile against the exact sorted order statistic. *)
  let xs = sample 20_000 in
  let h = Hdr.create () in
  Array.iter (Hdr.record_ns h) xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let exact = exact_percentile sorted q in
      let approx = Hdr.percentile_ns h q in
      let tol = (exact / 32) + 1 in
      if abs (approx - exact) > tol then
        Alcotest.failf "p%g: hdr %d vs exact %d (tol %d)" (q *. 100.)
          approx exact tol)
    [ 0.50; 0.90; 0.99; 0.999 ];
  let max_v = sorted.(Array.length sorted - 1) in
  let p100 = Hdr.percentile_ns h 1.0 in
  Alcotest.(check bool) "p100 never over-reports the max" true
    (p100 <= max_v && max_v - p100 <= (max_v / 32) + 1)

let test_hdr_merge () =
  (* Recording a stream into one histogram and recording its halves into
     two then merging must be indistinguishable. *)
  let xs = sample 8_000 in
  let whole = Hdr.create () in
  Array.iter (Hdr.record_ns whole) xs;
  let a = Hdr.create () and b = Hdr.create () in
  Array.iteri (fun i v -> Hdr.record_ns (if i land 1 = 0 then a else b) v) xs;
  Hdr.merge ~into:a b;
  Alcotest.(check int) "count" (Hdr.count whole) (Hdr.count a);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "p%g" (q *. 100.))
        (Hdr.percentile_ns whole q) (Hdr.percentile_ns a q))
    [ 0.50; 0.90; 0.99; 0.999; 1.0 ];
  Alcotest.(check (float 1e-9) "mean" (Hdr.mean_us whole) (Hdr.mean_us a))

let test_hdr_p99_exact_parity () =
  (* [p99_us] replaced an inline concat-sort-index block at every
     closed-loop bench site; it must reproduce that block bit for bit so
     recorded BENCH trajectories stay comparable. *)
  let rng = Chaos.stream_of_seed 0x99 3 in
  let lats =
    List.init 4 (fun _ ->
        Array.init 500 (fun _ -> Chaos.rand_float rng *. 1e-3))
  in
  let legacy =
    let all = Array.concat lats in
    Array.sort Float.compare all;
    let n = Array.length all in
    all.(min (n - 1) (n * 99 / 100)) *. 1e6
  in
  Alcotest.(check (float 0.)) "bit-for-bit" legacy (Hdr.p99_us lats);
  Alcotest.(check (float 0.)) "empty input" 0. (Hdr.p99_us [ [||] ])

(* ---------------- admission control ---------------- *)

let with_gate ~policy ?(rate = 100.) ?(burst = 5) f =
  Fun.protect
    ~finally:(fun () -> Admission.disable ())
    (fun () ->
      Admission.configure ~rate ~burst ~policy ();
      f ())

(* Counter deltas around [f]: (admitted, shed, serialised_overflow). *)
let ledger_deltas f =
  let a0 = Admission.admitted ()
  and s0 = Admission.shed ()
  and o0 = Admission.serialised_overflow () in
  f ();
  ( Admission.admitted () - a0,
    Admission.shed () - s0,
    Admission.serialised_overflow () - o0 )

let test_admission_shed_ledger () =
  (* A burst far above the token rate: the bucket's initial [burst]
     tokens admit the head of the burst, the rest raise Overloaded.
     Every call lands in exactly one ledger column. *)
  let tv = Tvar.make 0 in
  let calls = 200 in
  let ok = ref 0 and over = ref 0 in
  let adm, shed, ser =
    ledger_deltas (fun () ->
        with_gate ~policy:Admission.Shed (fun () ->
            Alcotest.(check bool) "gate enabled" true (Admission.enabled ());
            for _ = 1 to calls do
              match
                Admission.run (fun () -> Tvar.set tv (Tvar.get tv + 1))
              with
              | () -> incr ok
              | exception Stm.Overloaded -> incr over
            done))
  in
  Alcotest.(check int) "every call accounted" calls (!ok + !over);
  Alcotest.(check int) "admitted ledger matches returns" !ok adm;
  Alcotest.(check int) "shed ledger matches Overloaded raises" !over shed;
  Alcotest.(check int) "no serialised overflow under Shed" 0 ser;
  Alcotest.(check bool) "burst admitted" true (!ok >= 5);
  Alcotest.(check bool) "excess shed" true (!over > 0);
  Alcotest.(check int) "only admitted bodies committed" !ok (Tvar.get tv)

let test_admission_serialise_ledger () =
  (* Same burst under Serialise: nothing is rejected — overflow routes
     through the serialised fallback, so every body commits. *)
  let tv = Tvar.make 0 in
  let calls = 200 in
  let adm, shed, ser =
    ledger_deltas (fun () ->
        with_gate ~policy:Admission.Serialise (fun () ->
            for _ = 1 to calls do
              Admission.run (fun () -> Tvar.set tv (Tvar.get tv + 1))
            done))
  in
  Alcotest.(check int) "every call admitted or serialised" calls (adm + ser);
  Alcotest.(check int) "nothing shed under Serialise" 0 shed;
  Alcotest.(check bool) "overflow went serialised" true (ser > 0);
  Alcotest.(check int) "every body committed exactly once" calls
    (Tvar.get tv)

let test_admission_stats_surface () =
  (* The module accessors and the [global_stats] fields are the same
     shard sums; [disable] restores plain (unledgered) atomic. *)
  let st = Stm.global_stats () in
  Alcotest.(check int) "admitted" (Admission.admitted ()) st.Stm.admitted;
  Alcotest.(check int) "shed" (Admission.shed ()) st.Stm.shed;
  Alcotest.(check int) "serialised_overflow"
    (Admission.serialised_overflow ())
    st.Stm.serialised_overflow;
  Alcotest.(check bool) "no gate outside with_gate" false
    (Admission.enabled ());
  let tv = Tvar.make 0 in
  let adm, shed, ser =
    ledger_deltas (fun () ->
        for _ = 1 to 50 do
          Admission.run (fun () -> Tvar.set tv (Tvar.get tv + 1))
        done)
  in
  Alcotest.(check (list int)) "ungated runs leave the ledger untouched"
    [ 0; 0; 0 ] [ adm; shed; ser ];
  Alcotest.(check int) "but still commit" 50 (Tvar.get tv)

exception User_boom

let test_admission_exception_counted () =
  (* Regression: a user exception escaping an admitted body used to leave
     the ledger with no column incremented for that call (only [Starved]
     was caught).  The admission was consumed, so it must be counted
     before the exception propagates: exactly one column per call on
     every path. *)
  let raised = ref 0 and ok = ref 0 in
  let adm, shed, ser =
    ledger_deltas (fun () ->
        with_gate ~policy:Admission.Shed ~rate:1e6 ~burst:50 (fun () ->
            for i = 1 to 40 do
              match
                Admission.run (fun () ->
                    if i mod 2 = 0 then raise User_boom)
              with
              | () -> incr ok
              | exception User_boom -> incr raised
            done))
  in
  Alcotest.(check int) "exceptions propagated" 20 !raised;
  Alcotest.(check int) "clean bodies returned" 20 !ok;
  Alcotest.(check int) "every call admitted exactly once" 40 adm;
  Alcotest.(check int) "nothing shed" 0 shed;
  Alcotest.(check int) "nothing serialised" 0 ser

let test_admission_nested_not_gated () =
  (* A transaction already in flight was admitted at its top level:
     nested Admission.run calls must not consume tokens or raise. *)
  let tv = Tvar.make 0 in
  with_gate ~policy:Admission.Shed ~rate:1e-3 ~burst:1 (fun () ->
      Stm.atomic (fun () ->
          for _ = 1 to 20 do
            Admission.run (fun () -> Tvar.set tv (Tvar.get tv + 1))
          done));
  Alcotest.(check int) "all nested bodies ran" 20 (Tvar.get tv)

(* ---------------- monotonic clock ---------------- *)

let test_monoclock_never_backwards () =
  (* Regression: budget timing, admission refill and open-loop pacing now
     read [Stm.Monoclock], which clamps [gettimeofday] so a backward NTP
     step can never drain the token bucket or record negative
     latencies. *)
  let prev = ref (Stm.Monoclock.now ()) in
  for _ = 1 to 10_000 do
    let t = Stm.Monoclock.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %.9f < %.9f" t !prev;
    prev := t
  done;
  (* The clamp is process-global: a sample taken after joining a domain
     is never older than the domain's last sample. *)
  let other = Domain.join (Domain.spawn (fun () -> Stm.Monoclock.now ())) in
  Alcotest.(check bool) "cross-domain monotone" true
    (Stm.Monoclock.now () >= other)

(* ---------------- open-loop generator ---------------- *)

let test_openloop_accounting () =
  (* Every scheduled arrival ends up in exactly one of completed / shed /
     dropped, and a healthy low-rate run completes its schedule. *)
  let hits = Atomic.make 0 in
  let worker ~domain:_ () = Atomic.incr hits in
  let r = OL.run_at ~domains:1 ~rate:2000. ~duration:0.25 worker in
  Alcotest.(check bool) "scheduled some" true (r.OL.scheduled > 0);
  Alcotest.(check int) "conservation" r.OL.scheduled
    (r.OL.completed + r.OL.shed + r.OL.dropped);
  Alcotest.(check int) "worker ran per completion" r.OL.completed
    (Atomic.get hits);
  Alcotest.(check bool) "healthy run completes >= 95%" true
    (float_of_int r.OL.completed
    >= 0.95 *. float_of_int r.OL.scheduled);
  Alcotest.(check bool) "percentiles ordered" true
    (r.OL.p50_us <= r.OL.p99_us && r.OL.p99_us <= r.OL.p999_us)

let test_openloop_shed_counted () =
  (* Stm.Overloaded out of the worker is shed, not completed and not a
     crash; everything else still conserves. *)
  let worker ~domain:_ =
    let i = ref 0 in
    fun () ->
      incr i;
      if !i mod 3 = 0 then raise Stm.Overloaded
  in
  let r = OL.run_at ~domains:1 ~rate:2000. ~duration:0.25 worker in
  Alcotest.(check bool) "some shed" true (r.OL.shed > 0);
  Alcotest.(check bool) "some completed" true (r.OL.completed > 0);
  Alcotest.(check int) "conservation with shedding" r.OL.scheduled
    (r.OL.completed + r.OL.shed + r.OL.dropped)

let test_rate_search_finds_knee () =
  (* A trivial service at a tiny rate cap: the search must return a
     sustainable knee with probes recorded in execution order. *)
  let worker ~domain:_ () = () in
  let s =
    OL.rate_search ~domains:1 ~start_rate:200. ~max_rate:800. ~refine:1
      ~duration:0.1 worker
  in
  Alcotest.(check bool) "knee found" true (s.OL.sustainable_rate > 0.);
  Alcotest.(check bool) "knee result present" true (s.OL.knee <> None);
  Alcotest.(check bool) "probes recorded" true (List.length s.OL.probes >= 2);
  let knee = Option.get s.OL.knee in
  Alcotest.(check bool) "knee is sustainable" true
    (knee.OL.dropped = 0 && knee.OL.shed = 0)

(* ---------------- adaptive minimum window ---------------- *)

let test_adaptive_min_window () =
  (* With a tiny epoch, write-heavy traffic that stops short of
     [min_window_commits] must not move the policy: every tick sees an
     under-sampled window and skips it without advancing the baselines.
     Continuing the same traffic past two full windows then switches. *)
  Fun.protect
    ~finally:(fun () ->
      Stm.Policy.disable_adaptive ();
      Stm.Policy.set_global Stm.Policy.lazy_rv_wb)
  @@ fun () ->
  let min_w = Stm.Policy.min_window_commits in
  Alcotest.(check bool) "min window is real" true (min_w >= 8);
  let tvs = Array.init 64 (fun _ -> Tvar.make 0) in
  let write_heavy i =
    Stm.atomic (fun () ->
        for j = 0 to 7 do
          let t = tvs.((i + (j * 9)) land 63) in
          Tvar.set t (Tvar.get t + 1)
        done)
  in
  let sw0 = Stm.Policy.switches () in
  Stm.Policy.enable_adaptive ~epoch:8 ();
  (* Phase 1: fewer commits than one evaluable window.  Ticks fire every
     8 commits but each window is under-sampled -> skipped. *)
  for i = 1 to min_w - 8 do
    write_heavy i
  done;
  Alcotest.(check int) "under-sampled windows never switch" sw0
    (Stm.Policy.switches ());
  Alcotest.(check string) "policy unmoved" "lazy_rv_wb"
    (Stm.Policy.name (Stm.Policy.global ()));
  (* Phase 2: same traffic, enough commits for two evaluated windows
     (hysteresis) — the skipped commits above roll into the first one. *)
  for i = 1 to (3 * min_w) + 16 do
    write_heavy i
  done;
  Alcotest.(check bool) "full windows switch" true
    (Stm.Policy.switches () > sw0);
  Alcotest.(check string) "converged to the undo-logging policy"
    "eager_rl_ul"
    (Stm.Policy.name (Stm.Policy.global ()))

let suites =
  [
    ( "harness.hdr",
      [
        Alcotest.test_case "exact below 64" `Quick test_hdr_exact_below_64;
        Alcotest.test_case "accuracy vs exact sort" `Quick test_hdr_accuracy;
        Alcotest.test_case "merge equivalence" `Quick test_hdr_merge;
        Alcotest.test_case "p99_us legacy parity" `Quick
          test_hdr_p99_exact_parity;
      ] );
    ( "stm.admission",
      [
        Alcotest.test_case "shed ledger" `Quick test_admission_shed_ledger;
        Alcotest.test_case "serialise ledger" `Quick
          test_admission_serialise_ledger;
        Alcotest.test_case "stats surface" `Quick test_admission_stats_surface;
        Alcotest.test_case "user exception still counted" `Quick
          test_admission_exception_counted;
        Alcotest.test_case "nested calls not gated" `Quick
          test_admission_nested_not_gated;
      ] );
    ( "harness.openloop",
      [
        Alcotest.test_case "monotonic clock" `Quick
          test_monoclock_never_backwards;
        Alcotest.test_case "request accounting" `Quick
          test_openloop_accounting;
        Alcotest.test_case "overloaded counts as shed" `Quick
          test_openloop_shed_counted;
        Alcotest.test_case "rate search finds a knee" `Slow
          test_rate_search_finds_knee;
        Alcotest.test_case "adaptive min window" `Quick
          test_adaptive_min_window;
      ] );
  ]
