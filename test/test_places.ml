(* Resilient places: routing, cross-place atomicity, replication (eager
   and lazy), kill/recover failure semantics, and version-chain
   reclamation when a place dies under a pinned snapshot reader. *)

module Stm = Tcc_stm.Stm
module Places = Places

let opt_int = Alcotest.(option int)

(* ---------------- routing and basic operations ---------------- *)

let test_routing_and_basic_ops () =
  let t = Places.create ~place_count:4 ~key_space:64 () in
  Alcotest.(check int) "place count" 4 (Places.place_count t);
  Alcotest.(check int) "key space" 64 (Places.key_space t);
  Alcotest.(check int) "key 0 routes to place 0" 0 (Places.place_of_key t 0);
  Alcotest.(check int) "key 15 routes to place 0" 0 (Places.place_of_key t 15);
  Alcotest.(check int) "key 16 routes to place 1" 1 (Places.place_of_key t 16);
  Alcotest.(check int) "key 63 routes to place 3" 3 (Places.place_of_key t 63);
  Alcotest.check_raises "key outside the space is rejected"
    (Invalid_argument "Places: key outside [0, key_space)") (fun () ->
      ignore (Places.place_of_key t 64));
  (* One key per place, both collections. *)
  List.iter
    (fun k ->
      Alcotest.(check opt_int) "fresh put" None (Places.put t k (k * 10));
      Alcotest.(check opt_int) "fresh sorted put" None
        (Places.sorted_put t k (k * 10)))
    [ 3; 19; 35; 51 ];
  Alcotest.(check opt_int) "find routes back" (Some 190) (Places.find t 19);
  Alcotest.(check opt_int) "sorted find routes back" (Some 350)
    (Places.sorted_find t 35);
  Alcotest.(check bool) "mem" true (Places.mem t 51);
  Alcotest.(check int) "size spans places" 4 (Places.size t);
  Alcotest.(check int) "sorted size spans places" 4 (Places.sorted_size t);
  Alcotest.(check (list (pair int int)))
    "sorted enumeration is globally ascending across intervals"
    [ (3, 30); (19, 190); (35, 350); (51, 510) ]
    (Places.sorted_to_list t);
  Alcotest.(check opt_int) "remove returns previous" (Some 190)
    (Places.remove t 19);
  Alcotest.(check opt_int) "removed" None (Places.find t 19);
  Alcotest.(check int) "fold agrees with size" (Places.size t)
    (Places.fold (fun _ _ n -> n + 1) t 0);
  Places.close t

let test_cross_place_atomicity () =
  let t = Places.create ~place_count:4 ~key_space:64 () in
  (* One transaction spanning three places commits atomically. *)
  Stm.atomic (fun () ->
      ignore (Places.put t 1 100);
      ignore (Places.put t 20 200);
      ignore (Places.sorted_put t 40 300));
  Alcotest.(check opt_int) "place 0 write" (Some 100) (Places.find t 1);
  Alcotest.(check opt_int) "place 1 write" (Some 200) (Places.find t 20);
  Alcotest.(check opt_int) "place 2 sorted write" (Some 300)
    (Places.sorted_find t 40);
  (* A raising transaction applies nothing anywhere. *)
  (match
     Stm.atomic (fun () ->
         ignore (Places.put t 2 1);
         ignore (Places.put t 21 2);
         failwith "boom")
   with
  | () -> Alcotest.fail "expected the transaction to raise"
  | exception Failure _ -> ());
  Alcotest.(check opt_int) "aborted write, place 0" None (Places.find t 2);
  Alcotest.(check opt_int) "aborted write, place 1" None (Places.find t 21);
  Alcotest.(check int) "no leaked locks" 0 (Places.outstanding_locks t);
  Places.close t

(* ---------------- replication ---------------- *)

let test_eager_replication () =
  let t = Places.create ~place_count:2 ~key_space:32 ~mode:Places.Eager () in
  for i = 0 to 19 do
    ignore (Places.put t i i);
    ignore (Places.sorted_put t i i)
  done;
  ignore (Places.remove t 3);
  ignore (Places.sorted_remove t 3);
  Alcotest.(check int) "eager: zero lag at all times" 0
    (Places.max_lag_observed t);
  Alcotest.(check int) "lag right now" 0 (Places.replication_lag t);
  Alcotest.(check bool) "shipped batches were applied" true
    (Places.batches_shipped t > 0
    && Places.batches_applied t = Places.batches_shipped t);
  Alcotest.(check bool) "replicas agree with masters" true
    (Places.replica_agrees t);
  Alcotest.(check bool) "lag bound is none (eager)" true
    (Places.lag_bound t = None);
  Places.close t

let test_lazy_lag_bound () =
  (* No background drainer: only committer backpressure enforces the
     bound, which is exactly what the bound must not depend on. *)
  let t =
    Places.create ~place_count:2 ~key_space:32
      ~mode:(Places.Lazy { max_lag = 4 })
      ~background:false ()
  in
  for i = 0 to 31 do
    ignore (Places.put t i i);
    Alcotest.(check bool)
      (Printf.sprintf "lag within bound after write %d" i)
      true
      (Places.replication_lag t <= 4)
  done;
  Alcotest.(check bool) "high-water respects the bound" true
    (Places.max_lag_observed t <= 4);
  Places.drain t;
  Alcotest.(check int) "drained" 0 (Places.replication_lag t);
  Alcotest.(check bool) "replicas agree after drain" true
    (Places.replica_agrees t);
  Places.close t

(* ---------------- kill / recover ---------------- *)

let test_kill_refuses_and_recover_restores () =
  let t = Places.create ~place_count:2 ~key_space:32 () in
  ignore (Places.put t 3 33);
  ignore (Places.sorted_put t 3 33);
  ignore (Places.put t 20 77);
  Places.kill t 0;
  Alcotest.(check bool) "down" false (Places.is_up t 0);
  let expect_down f =
    match f () with
    | _ -> Alcotest.fail "expected Place_down"
    | exception Stm.Place_down { place } ->
        Alcotest.(check int) "names the dead place" 0 place
  in
  expect_down (fun () -> Places.find t 3);
  expect_down (fun () -> Places.put t 4 1);
  expect_down (fun () -> Places.sorted_remove t 3);
  expect_down (fun () -> Stm.atomic (fun () -> Places.find t 3));
  (* The error is not transparently retried: the failing transaction ran
     exactly once and applied nothing. *)
  let attempts = ref 0 in
  expect_down (fun () ->
      Stm.atomic (fun () ->
          incr attempts;
          ignore (Places.put t 20 78);
          ignore (Places.put t 5 1)));
  Alcotest.(check int) "no transparent retry of Place_down" 1 !attempts;
  Alcotest.(check opt_int) "live-place write in the vetoed txn not applied"
    (Some 77) (Places.find t 20);
  (* Other places stay up; snapshots still read the frozen master. *)
  Alcotest.(check opt_int) "live place serves" (Some 77) (Places.find t 20);
  Alcotest.(check opt_int) "snapshot reads the frozen master" (Some 33)
    (Stm.snapshot (fun () -> Places.find t 3));
  Places.recover t 0;
  Alcotest.(check bool) "up again" true (Places.is_up t 0);
  Alcotest.(check int) "promoted once" 1 (Places.generation t 0);
  Alcotest.(check opt_int) "state restored from the replica" (Some 33)
    (Places.find t 3);
  Alcotest.(check opt_int) "sorted state restored" (Some 33)
    (Places.sorted_find t 3);
  ignore (Places.put t 4 44);
  Alcotest.(check opt_int) "recovered place accepts writes" (Some 44)
    (Places.find t 4);
  Alcotest.(check bool) "replicas agree after failover" true
    (Places.replica_agrees t);
  Places.close t

let test_lazy_tail_survives_kill () =
  (* The committed-but-unreplicated tail: lazy mode, no drainer, bound
     high enough that nothing was applied to the replica when the master
     dies.  Recovery must replay the inbox — losing it would lose
     committed writes. *)
  let t =
    Places.create ~place_count:2 ~key_space:32
      ~mode:(Places.Lazy { max_lag = 100 })
      ~background:false ()
  in
  for i = 0 to 9 do
    ignore (Places.put t i (i * 2));
    ignore (Places.sorted_put t i (i * 2))
  done;
  Alcotest.(check bool) "tail is pending, not applied" true
    (Places.place_lag t 0 > 0);
  Places.kill t 0;
  Places.recover t 0;
  for i = 0 to 9 do
    Alcotest.(check opt_int)
      (Printf.sprintf "committed write %d survived the kill" i)
      (Some (i * 2)) (Places.find t i);
    Alcotest.(check opt_int)
      (Printf.sprintf "sorted mirror %d survived the kill" i)
      (Some (i * 2))
      (Places.sorted_find t i)
  done;
  Places.close t

let test_txn_spanning_failover_aborts () =
  (* A transaction that captured the pre-kill master generation and tries
     to keep using it after recovery must abort with Place_down before
     its commit point — physical-identity check in prepare and at op
     time. *)
  let t = Places.create ~place_count:2 ~key_space:32 () in
  ignore (Places.put t 1 10);
  let step = Atomic.make 0 in
  let wait s =
    while Atomic.get step < s do
      Domain.cpu_relax ()
    done
  in
  let worker =
    Domain.spawn (fun () ->
        let first = ref true in
        match
          Stm.atomic (fun () ->
              ignore (Places.put t 2 20);
              if !first then begin
                first := false;
                Atomic.set step 1;
                (* Hold the transaction open across the kill/recover. *)
                wait 2
              end;
              ignore (Places.put t 3 30))
        with
        | () -> `Committed
        | exception Stm.Place_down { place } -> `Down place)
  in
  wait 1;
  Places.kill t 0;
  Places.recover t 0;
  Atomic.set step 2;
  (match Domain.join worker with
  | `Down 0 -> ()
  | `Down p -> Alcotest.failf "Place_down named place %d" p
  | `Committed -> Alcotest.fail "stale transaction must not commit");
  Alcotest.(check opt_int) "first write of the vetoed txn not applied" None
    (Places.find t 2);
  Alcotest.(check opt_int) "second write not applied" None (Places.find t 3);
  Alcotest.(check opt_int) "pre-kill state intact" (Some 10) (Places.find t 1);
  Alcotest.(check int) "no leaked locks" 0 (Places.outstanding_locks t);
  Alcotest.(check int) "no held regions" 0 (Stm.regions_held ());
  Places.close t

(* ---------------- snapshot readers across failover ---------------- *)

let test_snapshot_pinned_across_kill_and_reclamation () =
  (* A reader pins a timestamp, reads the master, then the place dies and
     recovers while the pin is held.  The pinned section keeps its frozen
     pre-kill view for data it already resolved, is refused (Place_down)
     if it touches the promoted generation, and — once the pin is
     released — the version chains of the promoted masters converge back
     to the TM's bound: the dead generation pins nothing. *)
  let t = Places.create ~place_count:2 ~key_space:32 () in
  for i = 1 to 5 do
    ignore (Places.put t 1 i)
  done;
  let pinned = Atomic.make false and release = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        Stm.snapshot (fun () ->
            let seen = Places.find t 1 in
            Atomic.set pinned true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            (* The place was killed and promoted while we were pinned:
               our timestamp predates the new generation's epoch, so a
               fresh access is refused rather than fed unreachable
               history. *)
            let denied =
              try
                ignore (Places.find t 1);
                false
              with Stm.Place_down { place = 0 } -> true
            in
            (seen, denied)))
  in
  while not (Atomic.get pinned) do
    Domain.cpu_relax ()
  done;
  Places.kill t 0;
  Places.recover t 0;
  (* Grow fresh history on the promoted generation while the old pin is
     still alive. *)
  for i = 6 to 6 + Stm.version_chain_bound do
    ignore (Places.put t 1 (i * 10))
  done;
  Atomic.set release true;
  let seen, denied = Domain.join reader in
  Alcotest.(check opt_int) "pinned read saw the pre-kill value" (Some 5) seen;
  Alcotest.(check bool) "post-promotion access under an old pin is refused"
    true denied;
  (* Pin released: publishing reclaims; the promoted chains converge to
     the TM bound. *)
  for i = 1 to 3 do
    ignore (Places.put t 1 (1000 + i))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "history length %d converges to the bound %d"
       (Places.snapshot_history_length t)
       Stm.version_chain_bound)
    true
    (Places.snapshot_history_length t <= Stm.version_chain_bound);
  Alcotest.(check int) "no leaked locks" 0 (Places.outstanding_locks t);
  Places.close t

(* ---------------- quiescence guard (Stm.reset_stats) ---------------- *)

let test_reset_stats_quiescence_guard () =
  Alcotest.(check int) "quiescent outside transactions" 0
    (Stm.in_flight_transactions ());
  Stm.reset_stats ();
  (* In flight: the probe counts us, and the reset refuses. *)
  let observed = ref 0 and refused = ref false in
  Stm.atomic (fun () ->
      observed := Stm.in_flight_transactions ();
      match Stm.reset_stats () with
      | () -> ()
      | exception Stm.Not_quiescent { in_flight } ->
          refused := in_flight >= 1);
  Alcotest.(check int) "the running transaction is counted" 1 !observed;
  Alcotest.(check bool) "reset refused while non-quiescent" true !refused;
  (* Back to quiescence: counter decremented on commit, reset allowed. *)
  Alcotest.(check int) "counter returns to zero" 0
    (Stm.in_flight_transactions ());
  Stm.reset_stats ();
  (* The abort path decrements too. *)
  (match Stm.atomic (fun () -> failwith "boom") with
  | () -> ()
  | exception Failure _ -> ());
  Alcotest.(check int) "abort path decrements" 0 (Stm.in_flight_transactions ())

let suites =
  [
    ( "places",
      [
        Alcotest.test_case "routing and basic operations" `Quick
          test_routing_and_basic_ops;
        Alcotest.test_case "cross-place transactions are atomic" `Quick
          test_cross_place_atomicity;
        Alcotest.test_case "eager replication: zero lag, replicas agree"
          `Quick test_eager_replication;
        Alcotest.test_case "lazy replication: backpressure bounds the lag"
          `Quick test_lazy_lag_bound;
        Alcotest.test_case "kill refuses, recover restores from the slave"
          `Quick test_kill_refuses_and_recover_restores;
        Alcotest.test_case "lazy unreplicated tail survives a kill" `Quick
          test_lazy_tail_survives_kill;
        Alcotest.test_case "transaction spanning a failover aborts cleanly"
          `Quick test_txn_spanning_failover_aborts;
        Alcotest.test_case "pinned snapshot across kill; chains reconverge"
          `Quick test_snapshot_pinned_across_kill_and_reclamation;
      ] );
    ( "stm.quiescence",
      [
        Alcotest.test_case "reset_stats refuses while transactions run"
          `Quick test_reset_stats_quiescence_guard;
      ] );
  ]
