(* TM policy matrix: state equivalence across fixed policies and the
   adaptive controller, pinned-policy enforcement at the collection
   boundary, policy-aware chaos soaks and the lazy_rv_wb stats pin. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module Tm = Tcc_stm.Stm.Tm_ops
module Chaos = Harness.Chaos
module Map = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module Sorted = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module Queue = Txcoll.Host.Queue

let policy_names = [ "lazy_rv_wb"; "eager_rv_wb"; "lazy_rl_wb"; "eager_rl_ul" ]

(* Every test must leave the process on the defaults it found. *)
let with_clean_policy f =
  Fun.protect
    ~finally:(fun () ->
      Stm.Policy.disable_adaptive ();
      Stm.Policy.set_global Stm.Policy.lazy_rv_wb)
    f

(* ---------------- naming ---------------- *)

let test_policy_names () =
  List.iter
    (fun n ->
      match Stm.Policy.of_name n with
      | None -> Alcotest.failf "of_name %s = None" n
      | Some p ->
          Alcotest.(check string) "name round-trips" n (Stm.Policy.name p))
    policy_names;
  Alcotest.(check int) "four policies ship" 4 (List.length Stm.Policy.all);
  Alcotest.(check bool) "unknown name rejected" true
    (Stm.Policy.of_name "speculative_hw" = None);
  Alcotest.(check string) "default global is the seed protocol" "lazy_rv_wb"
    (Stm.Policy.name (Stm.Policy.global ()))

(* ---------------- state equivalence ---------------- *)

(* One deterministic op program over Map + SortedMap + Queue, replayed
   under each policy mode.  Single domain, so any state divergence is a
   protocol bug, not a schedule artefact. *)

type op = Put of int * int | Remove of int | Push of int | Pop

let apply_program ~mode ops =
  let m = Map.create () and s = Sorted.create () and q = Queue.create () in
  let run f =
    match mode with
    | `Fixed p -> Stm.atomic ~tm_policy:p f
    | `Adaptive -> Stm.atomic f
  in
  List.iter
    (fun op ->
      run (fun () ->
          match op with
          | Put (k, v) ->
              ignore (Map.put m k v);
              ignore (Sorted.put s k v)
          | Remove k ->
              ignore (Map.remove m k);
              ignore (Sorted.remove s k)
          | Push v -> Queue.put q v
          | Pop -> ignore (Queue.poll q)))
    ops;
  let map_state =
    List.sort compare (Map.fold (fun k v acc -> (k, v) :: acc) m [])
  in
  let sorted_state = Sorted.fold (fun k v acc -> (k, v) :: acc) s [] in
  let rec drain acc = match Queue.poll q with
    | None -> List.rev acc
    | Some v -> drain (v :: acc)
  in
  (map_state, sorted_state, drain [])

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Put (k land 31, v)) small_nat small_nat);
        (2, map (fun k -> Remove (k land 31)) small_nat);
        (2, map (fun v -> Push v) small_nat);
        (1, return Pop);
      ])

let prop_state_equivalence =
  QCheck.Test.make ~count:40 ~name:"all policies state-equivalent"
    (QCheck.make ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
       QCheck.Gen.(list_size (int_range 1 60) gen_op))
    (fun ops ->
      with_clean_policy @@ fun () ->
      let reference = apply_program ~mode:(`Fixed Stm.Policy.lazy_rv_wb) ops in
      List.iter
        (fun p ->
          if apply_program ~mode:(`Fixed p) ops <> reference then
            QCheck.Test.fail_reportf "policy %s diverges from lazy_rv_wb"
              (Stm.Policy.name p))
        Stm.Policy.all;
      (* Adaptive mode: tiny epoch so the controller actually runs windows
         mid-program. *)
      Stm.Policy.enable_adaptive ~epoch:16 ();
      let adaptive = apply_program ~mode:`Adaptive ops in
      Stm.Policy.disable_adaptive ();
      if adaptive <> reference then
        QCheck.Test.fail_reportf "adaptive mode diverges from lazy_rv_wb";
      true)

(* ---------------- policy-aware chaos soaks ---------------- *)

let test_chaos_soak_policies () =
  (* 2 seeds x (4 fixed policies + adaptive): every soak must pass the
     linearizability and leak checks inside [run_soak] regardless of the
     TM protocol underneath. *)
  with_clean_policy @@ fun () ->
  List.iter
    (fun seed ->
      List.iter
        (fun tm_policy ->
          let r =
            Chaos.run_soak
              (Chaos.default_soak ~tm_policy ~domains:2 ~ops_per_domain:300
                 ~seed 0.05)
          in
          if not r.ok then
            Alcotest.failf "soak seed=%d tm_policy=%s: %s" seed tm_policy
              (String.concat "; " r.errors);
          Alcotest.(check bool)
            (Printf.sprintf "work committed (seed=%d %s)" seed tm_policy)
            true (r.committed > 0))
        ("adaptive" :: policy_names))
    [ 7; 11 ];
  Alcotest.(check string) "global policy restored after soaks" "lazy_rv_wb"
    (Stm.Policy.name (Stm.Policy.global ()))

(* ---------------- lazy_rv_wb stats pin ---------------- *)

let test_lazy_stats_pinned () =
  (* Bit-for-bit guard for the seed protocol: a fixed single-domain
     transaction program must produce exactly the counters the seed
     produced.  Any drift here means the default path changed. *)
  with_clean_policy @@ fun () ->
  Stm.reset_stats ();
  let v = Tvar.make 0 and w = Tvar.make 0 in
  for i = 1 to 3 do
    Stm.atomic (fun () ->
        Tvar.set v i;
        Tvar.set w (Tvar.get v + i))
  done;
  for _ = 1 to 2 do
    ignore (Stm.atomic (fun () -> Tvar.get v + Tvar.get w))
  done;
  let s = Stm.global_stats () in
  Alcotest.(check int) "commits" 5 s.commits;
  Alcotest.(check int) "read-only fast-path commits" 2 s.read_only_commits;
  Alcotest.(check int) "clock bumps (one per mutating commit)" 3 s.clock_bumps;
  Alcotest.(check int) "conflict aborts" 0 s.conflict_aborts;
  Alcotest.(check int) "remote aborts" 0 s.remote_aborts;
  Alcotest.(check int) "handler failures" 0 s.handler_failures;
  Alcotest.(check int) "policy switches" 0 s.policy_switches;
  Alcotest.(check int) "final value" 6 (Tvar.get w)

(* ---------------- validation and pinning enforcement ---------------- *)

let full_support =
  {
    Tm_intf.ps_eager_acquire = true;
    ps_read_locking = true;
    ps_undo_logging = true;
  }

let test_validate_policy () =
  (* Unknown names are rejected outright. *)
  (match Tm.validate_policy ~support:full_support "hardware_htm" with
  | () -> Alcotest.fail "unknown policy accepted"
  | exception Invalid_argument _ -> ());
  (* Full support accepts the whole matrix. *)
  List.iter (Tm.validate_policy ~support:full_support) policy_names;
  (* A collection that cannot do encounter-time acquisition must reject
     eager policies but keep the lazy ones. *)
  let lazy_only = { full_support with Tm_intf.ps_eager_acquire = false } in
  Tm.validate_policy ~support:lazy_only "lazy_rv_wb";
  Tm.validate_policy ~support:lazy_only "lazy_rl_wb";
  (match Tm.validate_policy ~support:lazy_only "eager_rv_wb" with
  | () -> Alcotest.fail "eager policy accepted without support"
  | exception Invalid_argument _ -> ());
  let no_undo = { full_support with Tm_intf.ps_undo_logging = false } in
  (match Tm.validate_policy ~support:no_undo "eager_rl_ul" with
  | () -> Alcotest.fail "undo policy accepted without support"
  | exception Invalid_argument _ -> ())

let test_pinned_policy_enforced () =
  with_clean_policy @@ fun () ->
  (* Creation validates the name. *)
  (match Map.create ~tm_policy:"not_a_policy" () with
  | _ -> Alcotest.fail "bogus pin accepted"
  | exception Invalid_argument _ -> ());
  let m = Map.create ~tm_policy:"eager_rv_wb" () in
  Alcotest.(check (option string)) "pin recorded" (Some "eager_rv_wb")
    (Map.pinned_policy m);
  (* Mutating under the matching policy commits. *)
  Stm.atomic ~tm_policy:Stm.Policy.eager_rv_wb (fun () ->
      ignore (Map.put m 1 10));
  (* Mutating under the default policy violates the pin: the prepare
     phase raises and the exception escapes [atomic] un-retried. *)
  (match Stm.atomic (fun () -> ignore (Map.put m 2 20)) with
  | () -> Alcotest.fail "pin violation committed"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names both policies" true
        (let has needle =
           let n = String.length needle and m = String.length msg in
           let rec go i =
             i + n <= m && (String.sub msg i n = needle || go (i + 1))
           in
           go 0
         in
         has "eager_rv_wb" && has "lazy_rv_wb"));
  Alcotest.(check (option int)) "violating write rolled back" None
    (Map.find m 2);
  (* Read-only transactions skip prepare, so the pin is not checked. *)
  Alcotest.(check (option int)) "reads unchecked under any policy" (Some 10)
    (Stm.atomic (fun () -> Map.find m 1));
  (* Unpinned collections never check. *)
  let free = Map.create () in
  Alcotest.(check (option string)) "no pin by default" None
    (Map.pinned_policy free);
  Stm.atomic ~tm_policy:Stm.Policy.eager_rl_ul (fun () ->
      ignore (Map.put free 1 1))

let test_pinned_policy_other_collections () =
  with_clean_policy @@ fun () ->
  let s = Sorted.create ~tm_policy:"lazy_rl_wb" () in
  Alcotest.(check (option string)) "sorted pin" (Some "lazy_rl_wb")
    (Sorted.pinned_policy s);
  Stm.atomic ~tm_policy:Stm.Policy.lazy_rl_wb (fun () ->
      ignore (Sorted.put s 1 1));
  (match Stm.atomic (fun () -> ignore (Sorted.put s 2 2)) with
  | () -> Alcotest.fail "sorted pin violation committed"
  | exception Invalid_argument _ -> ());
  let q = Queue.create ~tm_policy:"eager_rl_ul" () in
  Stm.atomic ~tm_policy:Stm.Policy.eager_rl_ul (fun () -> Queue.put q 1);
  (match Stm.atomic (fun () -> Queue.put q 2) with
  | () -> Alcotest.fail "queue pin violation committed"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "only the matching push committed" 1
    (Queue.committed_length q)

(* ---------------- adaptive controller ---------------- *)

let test_adaptive_converges () =
  (* Write-heavy, read-poor traffic (8 writes per txn, no read-only
     commits) must drive the controller to eager_rl_ul within a few
     epochs, through the hysteresis, and count the switch. *)
  with_clean_policy @@ fun () ->
  Stm.reset_stats ();
  let tvs = Array.init 64 (fun _ -> Tvar.make 0) in
  Stm.Policy.enable_adaptive ~epoch:64 ();
  Alcotest.(check bool) "controller enabled" true (Stm.Policy.adaptive ());
  for i = 0 to 999 do
    Stm.atomic (fun () ->
        for j = 0 to 7 do
          let t = tvs.((i + (j * 9)) land 63) in
          Tvar.set t (Tvar.get t + 1)
        done)
  done;
  Alcotest.(check string) "converged to the undo-logging policy"
    "eager_rl_ul"
    (Stm.Policy.name (Stm.Policy.global ()));
  Alcotest.(check bool) "switch counted" true (Stm.Policy.switches () > 0);
  (* Read-dominated traffic swings it back. *)
  for i = 0 to 1999 do
    ignore
      (Stm.atomic (fun () ->
           if i mod 50 = 0 then Tvar.set tvs.(0) i;
           Tvar.get tvs.(i land 63)))
  done;
  Alcotest.(check string) "swung back to the read-optimised default"
    "lazy_rv_wb"
    (Stm.Policy.name (Stm.Policy.global ()));
  Stm.Policy.disable_adaptive ();
  Alcotest.(check bool) "controller disabled" false (Stm.Policy.adaptive ())

let suites =
  [
    ( "policy",
      [
        Alcotest.test_case "names round-trip" `Quick test_policy_names;
        QCheck_alcotest.to_alcotest prop_state_equivalence;
        Alcotest.test_case "chaos soak under every policy" `Slow
          test_chaos_soak_policies;
        Alcotest.test_case "lazy_rv_wb stats pinned" `Quick
          test_lazy_stats_pinned;
        Alcotest.test_case "validate_policy vs support" `Quick
          test_validate_policy;
        Alcotest.test_case "pinned policy enforced (map)" `Quick
          test_pinned_policy_enforced;
        Alcotest.test_case "pinned policy enforced (sorted, queue)" `Quick
          test_pinned_policy_other_collections;
        Alcotest.test_case "adaptive controller converges" `Quick
          test_adaptive_converges;
      ] );
  ]
