(* Seeded fault injection: handler exception safety, chaos determinism and
   the linearizability-checked soak matrix of the acceptance criteria. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module Chaos = Harness.Chaos
module Map = Txcoll.Host.Map (Txcoll.Host.Int_hashed)

exception Boom of int

(* ---------------- handler exception safety ---------------- *)

let test_commit_handlers_all_run () =
  let ran = ref [] in
  let v = Tvar.make 0 in
  (match
     Stm.atomic (fun () ->
         Tvar.set v 1;
         Stm.on_commit (fun () -> ran := 1 :: !ran);
         Stm.on_commit (fun () -> raise (Boom 2));
         Stm.on_commit (fun () -> ran := 3 :: !ran))
   with
  | () -> Alcotest.fail "expected Handler_failure"
  | exception Stm.Handler_failure { committed; failures } ->
      Alcotest.(check bool) "transaction committed" true committed;
      Alcotest.(check int) "one failure aggregated" 1 (List.length failures);
      Alcotest.(check bool) "the raised exception is preserved" true
        (match failures with [ Boom 2 ] -> true | _ -> false));
  Alcotest.(check (list int)) "both surviving handlers ran, in order" [ 1; 3 ]
    (List.rev !ran);
  Alcotest.(check int) "memory effects are in place" 1 (Tvar.get v);
  Alcotest.(check int) "commit regions released" 0 (Stm.regions_held ())

let test_abort_handlers_all_run_and_release () =
  Stm.reset_stats ();
  let map = Map.create () in
  let ran = ref [] in
  (match
     Stm.atomic (fun () ->
         ignore (Map.put map 1 10);
         (* Registered after the map's own handlers: runs first (newest
            first) and raises. *)
         Stm.on_abort (fun () -> ran := `Mine :: !ran);
         Stm.on_abort (fun () -> raise (Boom 1));
         ignore (Stm.self_abort ()))
   with
  | () -> Alcotest.fail "expected Handler_failure"
  | exception Stm.Handler_failure { committed; failures } ->
      Alcotest.(check bool) "not committed" false committed;
      Alcotest.(check int) "one failure" 1 (List.length failures));
  Alcotest.(check bool) "later abort handler still ran" true
    (List.mem `Mine !ran);
  Alcotest.(check (option int)) "write rolled back" None (Map.find map 1);
  Alcotest.(check int) "semantic locks released despite raising handler" 0
    (Map.outstanding_locks map);
  Alcotest.(check int) "handler failures counted" 1
    (Stm.global_stats ()).handler_failures

let test_abort_handler_failure_stops_retry () =
  (* A raising abort handler turns a transparent retry into a surfaced
     Handler_failure { committed = false } instead of looping forever. *)
  let attempts = ref 0 in
  match
    Stm.atomic (fun () ->
        incr attempts;
        Stm.on_abort (fun () -> raise (Boom !attempts));
        ignore (Stm.retry_now ()))
  with
  | () -> Alcotest.fail "expected Handler_failure"
  | exception Stm.Handler_failure { committed; _ } ->
      Alcotest.(check bool) "not committed" false committed;
      Alcotest.(check int) "no silent retry loop" 1 !attempts

(* ---------------- determinism ---------------- *)

let test_chaos_determinism () =
  (* Single domain: the whole schedule is deterministic, so two runs with
     the same seed must produce the same injection counts and final
     contents. *)
  let soak seed =
    Chaos.run_soak
      (Chaos.default_soak ~domains:1 ~ops_per_domain:800 ~seed 0.1)
  in
  let a = soak 42 and b = soak 42 in
  Alcotest.(check bool) "run A converged" true a.ok;
  Alcotest.(check bool) "run B converged" true b.ok;
  Alcotest.(check string) "identical fingerprints for identical seeds"
    a.fingerprint b.fingerprint;
  Alcotest.(check bool) "injections actually happened" true
    (let c, r, h, d = a.injections in
     c + r + h + d > 0);
  Alcotest.(check bool) "identical injection schedules" true
    (a.injections = b.injections);
  let other = soak 43 in
  Alcotest.(check bool) "different seed still converges" true other.ok

(* ---------------- acceptance soak matrix ---------------- *)

let test_soak_matrix () =
  (* p in {0.01, 0.05, 0.2} x 3 seeds x {default, greedy}, 2 domains, all
     three collection classes; every run must pass the linearizability and
     leak checks inside [run_soak]. *)
  List.iter
    (fun p ->
      List.iter
        (fun seed ->
          List.iter
            (fun policy ->
              let r =
                Chaos.run_soak
                  (Chaos.default_soak ~policy ~domains:2 ~ops_per_domain:500
                     ~seed p)
              in
              if not r.ok then
                Alcotest.failf "soak p=%.2f seed=%d policy=%s: %s" p seed
                  (Stm.Contention.name policy)
                  (String.concat "; " r.errors);
              Alcotest.(check bool)
                (Printf.sprintf "work committed (p=%.2f seed=%d %s)" p seed
                   (Stm.Contention.name policy))
                true (r.committed > 0))
            [ Stm.Contention.default; Stm.Contention.Greedy ])
        [ 1; 2; 3 ])
    [ 0.01; 0.05; 0.2 ]

let test_snapshot_reader_soak () =
  (* Snapshot readers concurrent with injected writers: every snapshot
     section must observe a prefix-consistent cut — mirror map/sorted
     writes never torn, fold counts equal to sizes, tvar pairs equal,
     reads pinned.  Seeds match the CI chaos matrix. *)
  List.iter
    (fun seed ->
      let r =
        Chaos.run_snapshot_soak
          (Chaos.default_soak ~domains:2 ~ops_per_domain:600 ~key_space:48
             ~seed 0.05)
      in
      if not r.sn_ok then
        Alcotest.failf "snapshot soak seed=%d: %s" seed
          (String.concat "; " r.sn_errors);
      Alcotest.(check bool)
        (Printf.sprintf "snapshots observed (seed=%d)" seed)
        true
        (r.sn_snapshots > 0 && r.sn_writer_commits > 0))
    [ 1; 2; 3 ]

(* ---------------- remote-abort settlement vs snapshot readers -------- *)

let test_remote_abort_settlement_vs_snapshots () =
  (* Every [remote_abort_outcome] call settles to exactly one of
     Delivered / Already_aborted / Too_late, the stats ledger matches the
     callers' tallies exactly, and nothing leaks — while concurrent
     [Stm.snapshot] readers pin timestamps through the abort traffic. *)
  Stm.reset_stats ();
  let map = Map.create () in
  for k = 0 to 15 do
    ignore (Map.put map k k)
  done;
  (* Deterministic settlement, single domain.  A committed transaction's
     handle settles Too_late (it serialises before the caller)... *)
  let v = Tvar.make 0 in
  let h = ref None in
  Stm.atomic (fun () ->
      h := Some (Stm.current ());
      Tvar.set v 1);
  (match Stm.remote_abort_outcome (Option.get !h) with
  | Stm.Too_late -> ()
  | _ -> Alcotest.fail "committed handle must settle Too_late");
  (* ...a first self-delivery wins the status race, and a second call in
     the same window finds the target already aborting. *)
  let first = ref true in
  let o1 = ref Stm.Too_late and o2 = ref Stm.Too_late in
  Stm.atomic (fun () ->
      Tvar.set v 2;
      if !first then begin
        first := false;
        o1 := Stm.remote_abort_outcome (Stm.current ());
        o2 := Stm.remote_abort_outcome (Stm.current ())
      end);
  Alcotest.(check bool) "first delivery wins the race" true
    (!o1 = Stm.Delivered);
  Alcotest.(check bool) "second call settles Already_aborted" true
    (!o2 = Stm.Already_aborted);
  Alcotest.(check int) "the aborted attempt retried and committed" 2
    (Tvar.get v);
  (* Racing settlement: an attacker fires outcomes at a running victim
     while a snapshot reader loops pinned sections over the same map. *)
  let stop = Atomic.make false in
  let victim_handle = Atomic.make None in
  let victim =
    Domain.spawn (fun () ->
        let committed = ref 0 in
        for i = 1 to 300 do
          Stm.atomic (fun () ->
              Atomic.set victim_handle (Some (Stm.current ()));
              ignore (Map.put map (i mod 16) i);
              for _ = 1 to 50 do
                Domain.cpu_relax ()
              done);
          incr committed
        done;
        !committed)
  in
  let reader =
    Domain.spawn (fun () ->
        let snaps = ref 0 and errs = ref 0 in
        while not (Atomic.get stop) do
          Stm.snapshot (fun () ->
              incr snaps;
              let n = Map.fold (fun _ _ n -> n + 1) map 0 in
              if n <> Map.size map then incr errs;
              let a = Map.find map 0 in
              if Map.find map 0 <> a then incr errs)
        done;
        (!snaps, !errs))
  in
  let delivered = ref 0 and late = ref 0 and already = ref 0 in
  for _ = 1 to 400 do
    (match Atomic.get victim_handle with
    | None -> ()
    | Some h -> (
        match Stm.remote_abort_outcome h with
        | Stm.Delivered -> incr delivered
        | Stm.Too_late -> incr late
        | Stm.Already_aborted -> incr already));
    for _ = 1 to 200 do
      Domain.cpu_relax ()
    done
  done;
  let committed = Domain.join victim in
  Atomic.set stop true;
  let snaps, reader_errs = Domain.join reader in
  Alcotest.(check int) "victim completed every transaction despite aborts"
    300 committed;
  Alcotest.(check int) "snapshot reader saw no inconsistency" 0 reader_errs;
  Alcotest.(check bool) "reader pinned snapshots through the abort traffic"
    true (snaps > 0);
  (* The settlement ledger is exact: one Delivered and one Too_late from
     the deterministic phase, plus the attacker's tallies; Already_aborted
     is deliberately uncounted (no stat moves). *)
  let st = Stm.global_stats () in
  Alcotest.(check int) "delivered settlements counted exactly"
    (1 + !delivered) st.remote_aborts_delivered;
  Alcotest.(check int) "late settlements counted exactly" (1 + !late)
    st.remote_aborts_late;
  Alcotest.(check int) "no leaked semantic locks" 0
    (Map.outstanding_locks map);
  Alcotest.(check int) "no held commit regions" 0 (Stm.regions_held ());
  Alcotest.(check int) "all transactions settled (quiescent)" 0
    (Stm.in_flight_transactions ())

let test_soak_karma_smoke () =
  let r =
    Chaos.run_soak
      (Chaos.default_soak ~policy:Stm.Contention.Karma ~domains:2
         ~ops_per_domain:400 ~seed:7 0.05)
  in
  if not r.ok then Alcotest.failf "karma soak: %s" (String.concat "; " r.errors)

(* ---------------- failover (kill/recover) soak ---------------- *)

let test_failover_soak () =
  (* Kill a master place mid-traffic and recover it from its slave, under
     chaos injection, across 2 seeds x both replication modes: zero lost
     committed writes, bounded lazy lag, snapshot readers running
     throughout. *)
  List.iter
    (fun mode ->
      List.iter
        (fun seed ->
          let r =
            Chaos.run_failover_soak
              (Chaos.default_failover ~domains:2 ~ops_per_domain:600
                 ~places:4 ~key_space:96 ~kills:2 ~mode ~seed 0.05)
          in
          if not r.fv_ok then
            Alcotest.failf "failover soak seed=%d mode=%s: %s" seed
              (Chaos.mode_name mode)
              (String.concat "; " r.fv_errors);
          Alcotest.(check bool)
            (Printf.sprintf "kills executed (seed=%d %s)" seed
               (Chaos.mode_name mode))
            true (r.fv_kills = 2))
        [ 11; 12 ])
    [ Places.Eager; Places.Lazy { max_lag = 8 } ]

let suites =
  [
    ( "stm.handler-safety",
      [
        Alcotest.test_case "raising commit handler skips nothing" `Quick
          test_commit_handlers_all_run;
        Alcotest.test_case "raising abort handler leaks nothing" `Quick
          test_abort_handlers_all_run_and_release;
        Alcotest.test_case "abort-handler failure surfaces, no retry loop"
          `Quick test_abort_handler_failure_stops_retry;
      ] );
    ( "chaos",
      [
        Alcotest.test_case "same seed, same schedule and contents" `Quick
          test_chaos_determinism;
        Alcotest.test_case "soak matrix (3 probs x 3 seeds x 2 policies)"
          `Slow test_soak_matrix;
        Alcotest.test_case "soak under karma" `Quick test_soak_karma_smoke;
        Alcotest.test_case "snapshot readers vs injected writers" `Quick
          test_snapshot_reader_soak;
        Alcotest.test_case "remote-abort settlement races snapshot readers"
          `Quick test_remote_abort_settlement_vs_snapshots;
        Alcotest.test_case "failover soak: kill/recover, zero lost writes"
          `Quick test_failover_soak;
      ] );
  ]
