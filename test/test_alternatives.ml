(* Tests for the §5.1 alternative implementation strategies: pessimistic
   semantic conflict detection and the undo-logging map. *)

module Stm = Tcc_stm.Stm
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module UM = Txcoll.Host.Map_undo (Txcoll.Host.Int_hashed)

let conflict_scenario ~reader ~writer =
  let phase = Atomic.make 0 in
  let signal n = if Atomic.get phase < n then Atomic.set phase n in
  let await n =
    while Atomic.get phase < n do
      Domain.cpu_relax ()
    done
  in
  let attempts = ref 0 in
  let d1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            incr attempts;
            reader ();
            signal 1;
            if !attempts = 1 then await 2))
  in
  let d2 =
    Domain.spawn (fun () ->
        await 1;
        Stm.atomic writer;
        signal 2)
  in
  Domain.join d1;
  Domain.join d2;
  !attempts

(* ---------------- pessimistic write policies ---------------- *)

let test_pessimistic_aggressive_aborts_reader_early () =
  let m = IM.create ~write_policy:IM.Pessimistic_aggressive () in
  ignore (IM.put m 1 "seed");
  (* The reader holds the key lock; the pessimistic writer aborts it at
     operation time — before the writer even commits. *)
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (IM.find m 1))
      ~writer:(fun () -> ignore (IM.put m 1 "w"))
  in
  Alcotest.(check int) "reader aborted" 2 n

let test_pessimistic_policies_still_correct () =
  List.iter
    (fun policy ->
      let m = IM.create ~write_policy:policy () in
      let worker base () =
        for i = 0 to 99 do
          Stm.atomic (fun () -> ignore (IM.put m (base + i) i))
        done
      in
      let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1000) ] in
      List.iter Domain.join ds;
      Alcotest.(check int) "all inserts" 200 (IM.size m);
      Alcotest.(check int) "no leaks" 0 (IM.outstanding_locks m))
    [ IM.Pessimistic_aggressive; IM.Pessimistic_timid ]

let test_pessimistic_timid_single_thread_noop () =
  (* Timid self-retry must not trigger on the transaction's own locks. *)
  let m = IM.create ~write_policy:IM.Pessimistic_timid () in
  Stm.atomic (fun () ->
      ignore (IM.find m 3);
      ignore (IM.put m 3 "mine");
      ignore (IM.put m 3 "again"));
  Alcotest.(check (option string)) "committed" (Some "again") (IM.find m 3)

(* ---------------- undo-logging map ---------------- *)

let test_undo_basic_semantics () =
  let m = UM.create () in
  ignore (UM.put m 1 "a");
  Stm.atomic (fun () ->
      Alcotest.(check (option string)) "put returns old" (Some "a")
        (UM.put m 1 "b");
      Alcotest.(check (option string)) "read own in-place write" (Some "b")
        (UM.find m 1);
      ignore (UM.put m 2 "c");
      Alcotest.(check int) "size live" 2 (UM.size m));
  Alcotest.(check (option string)) "committed" (Some "b") (UM.find m 1);
  Alcotest.(check int) "no leaks" 0 (UM.outstanding_locks m)

let test_undo_abort_compensates () =
  let m = UM.create () in
  ignore (UM.put m 1 "keep");
  ignore (UM.put m 2 "also");
  (try
     Stm.atomic (fun () ->
         ignore (UM.put m 1 "dirty");
         ignore (UM.remove m 2);
         ignore (UM.put m 3 "new");
         ignore (UM.put m 3 "newer");
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check (option string)) "overwrite undone" (Some "keep") (UM.find m 1);
  Alcotest.(check (option string)) "remove undone" (Some "also") (UM.find m 2);
  Alcotest.(check (option string)) "insert undone" None (UM.find m 3);
  Alcotest.(check int) "size restored" 2 (UM.size m);
  Alcotest.(check int) "no leaks" 0 (UM.outstanding_locks m)

let test_undo_writer_aborts_reader () =
  let m = UM.create () in
  ignore (UM.put m 1 "seed");
  let n =
    conflict_scenario
      ~reader:(fun () -> ignore (UM.find m 1))
      ~writer:(fun () -> ignore (UM.put m 1 "w"))
  in
  Alcotest.(check int) "in-place writer aborts reader at op time" 2 n

let test_undo_parallel_correct () =
  let m = UM.create () in
  (* Every ninth insert forces one transparent retry (first attempt only),
     exercising the undo path under parallelism. *)
  let worker base () =
    for i = 0 to 99 do
      let first = ref true in
      Stm.atomic (fun () ->
          ignore (UM.put m (base + i) i);
          if i mod 9 = 0 && !first then begin
            first := false;
            Stm.retry_now () |> ignore
          end)
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 1000) ] in
  List.iter Domain.join ds;
  Alcotest.(check int) "all inserts survive" 200 (UM.size m);
  Alcotest.(check int) "no leaks" 0 (UM.outstanding_locks m)

let test_undo_write_write_waits () =
  (* Two transactions writing the same key serialize without losing either
     update's effect; the final value is from the later-committed one. *)
  for _ = 1 to 10 do
    let m = UM.create () in
    ignore (UM.put m 7 "init");
    let body tag () =
      Stm.atomic (fun () -> ignore (UM.put m 7 tag))
    in
    let d1 = Domain.spawn (body "one") and d2 = Domain.spawn (body "two") in
    Domain.join d1;
    Domain.join d2;
    let v = UM.find m 7 in
    Alcotest.(check bool) "one of the writers" true
      (v = Some "one" || v = Some "two");
    Alcotest.(check int) "no leaks" 0 (UM.outstanding_locks m)
  done

let test_undo_write_write_no_lost_update () =
  (* Regression companion to the Semlock.lock_key_write displacement fix:
     with a single writer slot, a second registered writer silently
     deregistered the first, so the first's write-write conflict could be
     lost.  Two transactions doing read-modify-write increments of one key
     must serialise with no lost update: every registered writer stays
     visible to the blocked-check and to the committer's conflict_key. *)
  let m = UM.create () in
  ignore (UM.put m 0 0);
  let n = 200 in
  let worker () =
    for _ = 1 to n do
      Stm.atomic (fun () ->
          let v = Option.value (UM.find m 0) ~default:0 in
          ignore (UM.put m 0 (v + 1)))
    done
  in
  let ds = [ Domain.spawn worker; Domain.spawn worker ] in
  List.iter Domain.join ds;
  Alcotest.(check (option int)) "no lost increments" (Some (2 * n)) (UM.find m 0);
  Alcotest.(check int) "no leaks" 0 (UM.outstanding_locks m)

let test_undo_model_property () =
  let prop =
    QCheck.Test.make ~name:"undo map equals model after mixed commits/aborts"
      ~count:60
      QCheck.(list (triple small_nat small_int bool))
      (fun ops ->
        let m = UM.create () in
        let model = Hashtbl.create 16 in
        List.iter
          (fun (k, v, abort) ->
            let k = k mod 16 in
            try
              Stm.atomic (fun () ->
                  ignore (UM.put m k v);
                  if abort then Stm.self_abort ());
              Hashtbl.replace model k v
            with Stm.Aborted -> ())
          ops;
        UM.size m = Hashtbl.length model
        && Hashtbl.fold (fun k v ok -> ok && UM.find m k = Some v) model true
        && UM.outstanding_locks m = 0)
  in
  QCheck.Test.check_exn prop

let suites =
  [
    ( "alt.pessimistic",
      [
        Alcotest.test_case "aggressive aborts reader early" `Quick
          test_pessimistic_aggressive_aborts_reader_early;
        Alcotest.test_case "policies correct in parallel" `Quick
          test_pessimistic_policies_still_correct;
        Alcotest.test_case "timid ignores own locks" `Quick
          test_pessimistic_timid_single_thread_noop;
      ] );
    ( "alt.undo",
      [
        Alcotest.test_case "basic semantics" `Quick test_undo_basic_semantics;
        Alcotest.test_case "abort compensates" `Quick test_undo_abort_compensates;
        Alcotest.test_case "writer aborts reader" `Quick
          test_undo_writer_aborts_reader;
        Alcotest.test_case "parallel with retries" `Quick
          test_undo_parallel_correct;
        Alcotest.test_case "write-write serializes" `Quick
          test_undo_write_write_waits;
        Alcotest.test_case "model property" `Quick test_undo_model_property;
      ] );
  ]
