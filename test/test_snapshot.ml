(* Multi-version snapshot reads: abort-free read-only sections over tvars
   and the transactional collections, plus the version-chain reclamation
   properties (a pinned reader never observes a reclaimed version; chains
   shrink back to the bound once the oldest reader epoch advances) and the
   allocation budget of the snapshot-read commit path. *)

module Stm = Tcc_stm.Stm
module Tvar = Tcc_stm.Tvar
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module Q = Txcoll.Host.Queue

(* ---------------- basic semantics ---------------- *)

let test_snapshot_tvar_reads () =
  let a = Tvar.make 1 and b = Tvar.make 10 in
  Stm.atomic (fun () ->
      Tvar.set a 2;
      Tvar.set b 20);
  let sum = Stm.snapshot (fun () -> Tvar.get a + Tvar.get b) in
  Alcotest.(check int) "snapshot sees committed state" 22 sum

let test_snapshot_counts_as_ro_commit () =
  let tv = Tvar.make 0 in
  let s0 = Stm.global_stats () in
  for _ = 1 to 5 do
    ignore (Stm.snapshot (fun () -> Tvar.get tv))
  done;
  let s1 = Stm.global_stats () in
  Alcotest.(check int) "snapshot_reads counted" 5
    (s1.snapshot_reads - s0.snapshot_reads);
  Alcotest.(check int) "each snapshot is a read-only commit" 5
    (s1.read_only_commits - s0.read_only_commits);
  Alcotest.(check int) "no clock interaction" 0 (s1.clock_bumps - s0.clock_bumps);
  Alcotest.(check int) "no aborts" 0
    (s1.conflict_aborts + s1.remote_aborts + s1.explicit_aborts
    - (s0.conflict_aborts + s0.remote_aborts + s0.explicit_aborts))

let test_snapshot_rejects_writes_and_atomics () =
  let tv = Tvar.make 0 in
  let m = IM.create () in
  Stm.snapshot (fun () ->
      Alcotest.check_raises "Tvar.set raises"
        (Invalid_argument "Tvar.set: inside a snapshot read section")
        (fun () -> Tvar.set tv 1);
      Alcotest.check_raises "atomic raises"
        (Invalid_argument "Stm.atomic: inside a snapshot read section")
        (fun () -> Stm.atomic ignore);
      Alcotest.check_raises "map write raises"
        (Invalid_argument
           "Transactional_map: write inside a snapshot read section")
        (fun () -> ignore (IM.put m 1 1)))

let test_snapshot_nesting () =
  let tv = Tvar.make 7 in
  let v =
    Stm.snapshot (fun () ->
        Alcotest.(check bool) "in_snapshot" true (Stm.in_snapshot ());
        Stm.snapshot (fun () -> Tvar.get tv))
  in
  Alcotest.(check bool) "left" false (Stm.in_snapshot ());
  Alcotest.(check int) "nested read" 7 v

(* The pinned stamp is stable: writes committed by another domain while
   the snapshot is open stay invisible to it, and the pre-pin values keep
   resolving even after their versions become reclamation candidates. *)
let test_snapshot_isolation_across_domains () =
  let a = Tvar.make 0 and b = Tvar.make 0 in
  Stm.snapshot (fun () ->
      let a0 = Tvar.get a and b0 = Tvar.get b in
      let d =
        Domain.spawn (fun () ->
            for i = 1 to 50 do
              Stm.atomic (fun () ->
                  Tvar.set a i;
                  Tvar.set b (-i))
            done)
      in
      Domain.join d;
      Alcotest.(check int) "a unchanged" a0 (Tvar.get a);
      Alcotest.(check int) "b unchanged" b0 (Tvar.get b));
  Alcotest.(check int) "live read sees the writes" 50
    (Stm.snapshot (fun () -> Tvar.get a))

(* ---------------- collections ---------------- *)

let test_snapshot_map_ops () =
  let m = IM.create () in
  Stm.atomic (fun () ->
      for i = 1 to 20 do
        ignore (IM.put m i (i * 10))
      done);
  Stm.snapshot (fun () ->
      Alcotest.(check int) "size" 20 (IM.size m);
      Alcotest.(check bool) "not empty" false (IM.is_empty m);
      Alcotest.(check (option int)) "find" (Some 70) (IM.find m 7);
      Alcotest.(check (option int)) "miss" None (IM.find m 21);
      let sum = IM.fold (fun _ v acc -> acc + v) m 0 in
      Alcotest.(check int) "fold" 2100 sum;
      let c = IM.cursor m in
      let n = ref 0 in
      let rec drain () =
        match IM.next c with
        | Some _ ->
            incr n;
            drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check int) "cursor count" 20 !n);
  Alcotest.(check int) "no stranded locks" 0 (IM.outstanding_locks m)

let test_snapshot_sorted_map_cross_interval () =
  let m = SM.create ~splitters:[ 100; 200; 300 ] () in
  Stm.atomic (fun () ->
      for i = 1 to 40 do
        ignore (SM.put m (i * 10) i)
      done);
  Stm.snapshot (fun () ->
      Alcotest.(check int) "size" 40 (SM.size m);
      Alcotest.(check (option int)) "first key" (Some 10)
        (SM.first_key m);
      Alcotest.(check (option int)) "last key" (Some 400) (SM.last_key m);
      (* Cross-interval range fold: [50, 350) spans all four intervals. *)
      let keys =
        List.rev
          (SM.fold_range
             (fun k _ acc -> k :: acc)
             m [] ~lo:(Some 50) ~hi:(Some 350))
      in
      Alcotest.(check int) "range count" 30 (List.length keys);
      Alcotest.(check bool) "ascending across intervals" true
        (List.sort compare keys = keys);
      (* Cursor across interval boundaries. *)
      let c = SM.cursor m in
      let rec drain last n =
        match SM.cursor_next c with
        | Some (k, _) ->
            Alcotest.(check bool) "cursor ascending" true (k > last);
            drain k (n + 1)
        | None -> n
      in
      Alcotest.(check int) "cursor count" 40 (drain min_int 0));
  Alcotest.(check int) "no stranded locks" 0 (SM.outstanding_locks m)

let test_snapshot_queue () =
  let q = Q.create () in
  Stm.atomic (fun () ->
      Q.put q 1;
      Q.put q 2;
      Q.put q 3);
  Stm.snapshot (fun () ->
      Alcotest.(check (option int)) "peek" (Some 1) (Q.peek q);
      Alcotest.(check int) "length" 3 (Q.committed_length q);
      Alcotest.check_raises "poll raises"
        (Invalid_argument
           "Transactional_queue: write inside a snapshot read section")
        (fun () -> ignore (Q.poll q)));
  (* An op-time take published before the pin is visible; one after is
     not (single-domain sequencing). *)
  ignore (Q.poll q);
  Stm.snapshot (fun () ->
      Alcotest.(check (option int)) "post-take peek" (Some 2) (Q.peek q))

(* Pinned sorted-map snapshot stays on its cut while another domain
   commits cross-interval writes. *)
let test_snapshot_sorted_map_pinned_vs_writers () =
  let m = SM.create ~splitters:[ 100; 200 ] () in
  Stm.atomic (fun () ->
      for i = 1 to 30 do
        ignore (SM.put m (i * 10) 0)
      done);
  Stm.snapshot (fun () ->
      let size0 = SM.size m in
      let keys0 = SM.fold (fun k _ acc -> k :: acc) m [] in
      let d =
        Domain.spawn (fun () ->
            for i = 31 to 60 do
              Stm.atomic (fun () -> ignore (SM.put m (i * 10) 0))
            done)
      in
      Domain.join d;
      Alcotest.(check int) "size pinned" size0 (SM.size m);
      Alcotest.(check (list int)) "fold pinned" keys0
        (SM.fold (fun k _ acc -> k :: acc) m []));
  Alcotest.(check int) "live size" 60 (Stm.snapshot (fun () -> SM.size m))

(* ---------------- reclamation properties (QCheck) ---------------- *)

(* A pinned reader keeps resolving its pinned version no matter how many
   writes land meanwhile, and once the pin is released the next publish
   trims the chain back to the bound. *)
let test_tvar_reclamation_property () =
  let prop =
    QCheck.Test.make
      ~name:"pinned tvar version survives; chain rebounds after unpin"
      ~count:40
      QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 40) small_int))
      (fun (v0, writes) ->
        let tv = Tvar.make v0 in
        let ok =
          Stm.snapshot (fun () ->
              let pinned = Tvar.get tv in
              let d =
                Domain.spawn (fun () ->
                    List.iter (fun v -> Stm.atomic (fun () -> Tvar.set tv v)) writes)
              in
              Domain.join d;
              (* Every re-read inside the pin resolves the pinned version,
                 never a newer or reclaimed one. *)
              Tvar.get tv = pinned && pinned = v0)
        in
        (* Unpinned: the next publishes trim the chain to the bound. *)
        Stm.atomic (fun () -> Tvar.set tv 424242);
        Stm.atomic (fun () -> Tvar.set tv 424243);
        ok
        && Tvar.history_length tv <= Stm.version_chain_bound
        && Stm.snapshot (fun () -> Tvar.get tv) = 424243)
  in
  QCheck.Test.check_exn prop

(* Same property at the collection layer: the map's shadow chains never
   lose the pinned cut, and rebound once the reader epoch advances. *)
let test_map_reclamation_property () =
  let prop =
    QCheck.Test.make
      ~name:"pinned map cut survives; shadow chains rebound after unpin"
      ~count:25
      QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (pair small_nat small_int))
      (fun writes ->
        let m = IM.create ~stripes:4 () in
        Stm.atomic (fun () -> ignore (IM.put m 0 0));
        let ok =
          Stm.snapshot (fun () ->
              let size0 = IM.size m in
              let v0 = IM.find m 0 in
              let d =
                Domain.spawn (fun () ->
                    List.iter
                      (fun (k, v) ->
                        Stm.atomic (fun () -> ignore (IM.put m (k mod 16) v)))
                      writes)
              in
              Domain.join d;
              IM.size m = size0 && IM.find m 0 = v0)
        in
        (* Advance past the reader epoch: publishes on every stripe trim
           each chain back to the bound. *)
        Stm.atomic (fun () ->
            for k = 0 to 15 do
              ignore (IM.put m k (-1))
            done);
        Stm.atomic (fun () -> ignore (IM.put m 0 (-2)));
        ok && IM.snapshot_history_length m <= Stm.version_chain_bound)
  in
  QCheck.Test.check_exn prop

(* Leak probe alongside test_key_leak: sustained write traffic with
   snapshots opening and closing must leave every chain at the bound, not
   growing with the write count. *)
let test_chains_bounded_under_traffic () =
  let tv = Tvar.make 0 in
  let m = SM.create ~splitters:[ 50 ] () in
  for round = 1 to 200 do
    Stm.atomic (fun () ->
        Tvar.set tv round;
        ignore (SM.put m (round mod 100) round));
    if round mod 10 = 0 then
      Stm.snapshot (fun () -> ignore (SM.size m + Tvar.get tv))
  done;
  Alcotest.(check bool) "tvar chain bounded" true
    (Tvar.history_length tv <= Stm.version_chain_bound);
  Alcotest.(check bool) "sorted-map chains bounded" true
    (SM.snapshot_history_length m <= Stm.version_chain_bound)

(* ---------------- allocation budget ---------------- *)

(* The snapshot-read commit path is pin + chain reads + unpin: after
   warm-up it must stay within the issue's 215 minor-words budget per
   snapshot commit. *)
let test_snapshot_allocation_budget () =
  let tv = Tvar.make 1 and tw = Tvar.make 2 in
  for _ = 1 to 100 do
    ignore (Stm.snapshot (fun () -> Tvar.get tv + Tvar.get tw))
  done;
  let iters = 2000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Stm.snapshot (fun () -> Tvar.get tv + Tvar.get tw))
  done;
  let per = (Gc.minor_words () -. w0) /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "snapshot commit allocates %.1f words (<= 215)" per)
    true (per <= 215.)

let suites =
  [
    ( "snapshot",
      [
        Alcotest.test_case "tvar reads" `Quick test_snapshot_tvar_reads;
        Alcotest.test_case "counts as abort-free ro commit" `Quick
          test_snapshot_counts_as_ro_commit;
        Alcotest.test_case "rejects writes and nested atomics" `Quick
          test_snapshot_rejects_writes_and_atomics;
        Alcotest.test_case "nesting" `Quick test_snapshot_nesting;
        Alcotest.test_case "isolation across domains" `Quick
          test_snapshot_isolation_across_domains;
        Alcotest.test_case "map point/aggregate/cursor ops" `Quick
          test_snapshot_map_ops;
        Alcotest.test_case "sorted map cross-interval reads" `Quick
          test_snapshot_sorted_map_cross_interval;
        Alcotest.test_case "queue peek/length" `Quick test_snapshot_queue;
        Alcotest.test_case "sorted map pinned vs writers" `Quick
          test_snapshot_sorted_map_pinned_vs_writers;
      ] );
    ( "snapshot.reclamation",
      [
        Alcotest.test_case "tvar chain property" `Quick
          test_tvar_reclamation_property;
        Alcotest.test_case "map shadow chain property" `Quick
          test_map_reclamation_property;
        Alcotest.test_case "chains bounded under traffic" `Quick
          test_chains_bounded_under_traffic;
        Alcotest.test_case "snapshot commit allocation budget" `Quick
          test_snapshot_allocation_budget;
      ] );
  ]
