(* Striping must change contention, never semantics: the traced lock rows
   of Tables 2 and 5 are identical for every stripe count, single-threaded
   behaviour is identical across K, range locks stay bounded under
   incremental cursors (the coalescing regression), and the multi-domain
   chaos soak converges when every worker targets one shared striped
   map. *)

module Stm = Tcc_stm.Stm
module LT = Harness.Locktables
module Chaos = Harness.Chaos
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

let ks = [ 1; 4; 16 ]

(* ---------------- Tables 2/5: lock rows are K-invariant ---------------- *)

let map_ops : (string * (int LT.IM.t -> unit)) list =
  [
    ("containsKey(10) [present]", fun m -> ignore (LT.IM.mem m 10));
    ("containsKey(77) [absent]", fun m -> ignore (LT.IM.mem m 77));
    ("get(10)", fun m -> ignore (LT.IM.find m 10));
    ("size", fun m -> ignore (LT.IM.size m));
    ("isEmpty", fun m -> ignore (LT.IM.is_empty m));
    ("entrySet iteration", fun m -> ignore (LT.IM.to_list m));
    ("put(10, v)", fun m -> ignore (LT.IM.put m 10 0));
    ("put(77, v) [new key]", fun m -> ignore (LT.IM.put m 77 0));
    ("putBlind(10, v)", fun m -> LT.IM.put_blind m 10 0);
    ("remove(10)", fun m -> ignore (LT.IM.remove m 10));
    ("removeBlind(10)", fun m -> LT.IM.remove_blind m 10);
  ]

let sorted_ops : (string * (int LT.SM.t -> unit)) list =
  [
    ("firstKey", fun m -> ignore (LT.SM.first_key m));
    ("lastKey", fun m -> ignore (LT.SM.last_key m));
    ("entrySet iteration", fun m -> ignore (LT.SM.to_list m));
    ( "subMap(15,25) iteration",
      fun m ->
        ignore (LT.SM.fold_range (fun _ _ a -> a) m () ~lo:(Some 15) ~hi:(Some 25)) );
    ("get(10)", fun m -> ignore (LT.SM.find m 10));
    ("put(77, v) [new key]", fun m -> ignore (LT.SM.put m 77 0));
    ("remove(10)", fun m -> ignore (LT.SM.remove m 10));
  ]

let test_map_rows_stripe_invariant () =
  List.iter
    (fun (name, op) ->
      let baseline = LT.probe_map ~stripes:1 op in
      List.iter
        (fun k ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s locks identical at K=%d" name k)
            baseline
            (LT.probe_map ~stripes:k op))
        ks)
    map_ops

(* Splitter lists exercising B ∈ {1, 2, 4}; the last one puts cut points
   exactly on probed keys, so boundary-aligned routing is covered. *)
let splitter_lists = [ []; [ 25 ]; [ 15; 25; 35 ]; [ 10; 20; 30 ] ]

let test_sorted_rows_interval_invariant () =
  List.iter
    (fun (name, op) ->
      let baseline = LT.probe_sorted ~splitters:[] op in
      List.iter
        (fun splitters ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s locks identical at B=%d" name
               (List.length splitters + 1))
            baseline
            (LT.probe_sorted ~splitters op))
        splitter_lists)
    sorted_ops

(* B = 1 rows pinned against the pre-interval-partitioning behaviour:
   these literals were traced from the single-structure implementation and
   must never drift. *)
let test_sorted_rows_b1_baseline () =
  let expect =
    [
      ("firstKey", [ "first" ]);
      ("lastKey", [ "last" ]);
      ("entrySet iteration", [ "range"; "first"; "last" ]);
      ("subMap(15,25) iteration", [ "range" ]);
      ("get(10)", [ "key(10)" ]);
      ("put(77, v) [new key]", [ "key(77)" ]);
      ("remove(10)", [ "key(10)" ]);
    ]
  in
  List.iter
    (fun (name, op) ->
      let rows = LT.probe_sorted ~splitters:[] op in
      match List.assoc_opt name expect with
      | Some want ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s matches pre-PR rows" name)
            want rows
      | None -> Alcotest.failf "no pinned baseline for %s" name)
    sorted_ops

(* Table 8 has no striped variant (the queue is deliberately K = 1), but
   the rows must still trace as specified with the lock manager striped
   underneath the shared Semlock functor. *)
let test_queue_rows_unchanged () =
  let module Q = Txcoll.Host.Queue in
  Alcotest.(check (list string))
    "peek on empty takes the empty lock" [ "empty" ]
    (LT.probe_queue ~empty:true (fun q -> ignore (Q.peek q)));
  Alcotest.(check (list string))
    "peek on non-empty takes nothing" []
    (LT.probe_queue ~empty:false (fun q -> ignore (Q.peek q)))

(* ---------------- behavioural equivalence across K ---------------- *)

let test_single_thread_equivalence () =
  (* The same operation script against K = 1 and K = 16 must produce the
     same observable results and the same final contents. *)
  let script m =
    Stm.atomic (fun () ->
        for i = 0 to 63 do
          ignore (IM.put m i (i * i))
        done);
    let obs1 =
      Stm.atomic (fun () ->
          let a = IM.find m 17 in
          ignore (IM.remove m 17);
          let b = IM.find m 17 in
          (a, b, IM.size m))
    in
    let obs2 =
      Stm.atomic (fun () ->
          IM.fold (fun k v acc -> acc + k + v) m 0)
    in
    (obs1, obs2, List.sort compare (IM.to_list m))
  in
  let r1 = script (IM.create ~stripes:1 ()) in
  let r16 = script (IM.create ~stripes:16 ()) in
  let (a1, b1, s1), f1, l1 = r1 and (a16, b16, s16), f16, l16 = r16 in
  Alcotest.(check (option int)) "find before remove" a1 a16;
  Alcotest.(check (option int)) "find after remove" b1 b16;
  Alcotest.(check int) "size" s1 s16;
  Alcotest.(check int) "fold" f1 f16;
  Alcotest.(check bool) "contents identical" true (l1 = l16)

let test_stripe_count_clamped () =
  Alcotest.(check int) "default" 16 (IM.stripe_count (IM.create ()));
  Alcotest.(check int) "explicit" 4 (IM.stripe_count (IM.create ~stripes:4 ()));
  Alcotest.(check int) "clamped low" 1 (IM.stripe_count (IM.create ~stripes:0 ()));
  Alcotest.(check int) "clamped high" 62
    (IM.stripe_count (IM.create ~stripes:1000 ()));
  Alcotest.(check int) "sorted default one interval" 1
    (SM.stripe_count (SM.create ()));
  Alcotest.(check int) "splitters cut intervals" 4
    (SM.stripe_count (SM.create ~splitters:[ 10; 20; 30 ] ()));
  Alcotest.(check int) "splitters deduplicated" 2
    (SM.stripe_count (SM.create ~splitters:[ 5; 5; 5 ] ()));
  Alcotest.(check int) "splitters clamped to 62 intervals" 62
    (SM.stripe_count (SM.create ~splitters:(List.init 100 Fun.id) ()))

(* ---------------- range-lock growth regression ---------------- *)

let test_cursor_range_locks_bounded () =
  (* An incremental cursor extends its range lock one binding at a time;
     coalescing must keep the registered count O(1), not O(keys seen). *)
  let m = SM.create ~splitters:[ 50; 100; 150 ] () in
  Stm.atomic (fun () ->
      for i = 1 to 200 do
        ignore (SM.put m i i)
      done);
  let seen = ref 0 in
  let worst = ref 0 in
  (try
     Stm.atomic (fun () ->
         let c = SM.cursor m in
         let rec go () =
           match SM.cursor_next c with
           | Some _ ->
               incr seen;
               worst := max !worst (SM.outstanding_range_locks m);
               go ()
           | None -> ()
         in
         go ();
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "cursor visited every binding" 200 !seen;
  (* The coalesced lock registers once per overlapped interval, so the
     bound is O(B), never O(keys seen): one entry per stripe the sweep
     has crossed so far. *)
  Alcotest.(check bool)
    (Printf.sprintf "range locks stay bounded (worst %d)" !worst)
    true (!worst <= SM.stripe_count m);
  Alcotest.(check int) "released on abort" 0 (SM.outstanding_range_locks m)

let test_repeated_folds_coalesce () =
  let m = SM.create () in
  Stm.atomic (fun () ->
      for i = 1 to 100 do
        ignore (SM.put m i i)
      done);
  (try
     Stm.atomic (fun () ->
         (* Overlapping and adjacent spans from one transaction: one entry. *)
         for lo = 0 to 9 do
           ignore
             (SM.fold_range
                (fun _ _ a -> a)
                m ()
                ~lo:(Some (lo * 10))
                ~hi:(Some ((lo * 10) + 15)))
         done;
         Alcotest.(check int) "ten overlapping folds, one range entry" 1
           (SM.outstanding_range_locks m);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "released" 0 (SM.outstanding_range_locks m)

(* ---------------- interval-partitioned commit plans ---------------- *)

let test_commit_plan_interval_scoped () =
  (* B = 8; a writer whose buffered keys and ranges fall in one interval
     must plan strictly fewer regions than all_regions. *)
  let m = SM.create ~splitters:[ 100; 200; 300; 400; 500; 600; 700 ] () in
  Alcotest.(check int) "eight intervals" 8 (SM.stripe_count m);
  for i = 0 to 799 do
    ignore (SM.put m i i)
  done;
  let all = SM.all_region_count m in
  Alcotest.(check int) "full plan covers structure + intervals" 9 all;
  (try
     Stm.atomic (fun () ->
         (* Presence-preserving overwrite of one key: one interval, no
            structure region. *)
         ignore (SM.put m 150 0);
         Alcotest.(check int) "overwrite plans its interval only" 1
           (SM.commit_plan_size m);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  (try
     Stm.atomic (fun () ->
         (* New key: its interval plus the structure region (size and
            possibly endpoints move). *)
         ignore (SM.put m 850 0);
         Alcotest.(check int) "insert adds the structure region" 2
           (SM.commit_plan_size m);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  (try
     Stm.atomic (fun () ->
         (* A bounded scan inside one interval: that interval only. *)
         ignore (SM.fold_range (fun _ _ a -> a) m () ~lo:(Some 110) ~hi:(Some 150));
         ignore (SM.put m 150 0);
         Alcotest.(check bool) "scan+overwrite still under full plan" true
           (SM.commit_plan_size m < all);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  (try
     Stm.atomic (fun () ->
         (* Removals rescan the endpoints: full plan. *)
         ignore (SM.remove m 150);
         Alcotest.(check int) "removal plans every region" all
           (SM.commit_plan_size m);
         Stm.self_abort ())
   with Stm.Aborted -> ())

(* Satellite probe: optimistic point writes must not enter the structure
   region at operation time, and disjoint-interval writers' commit plans
   must not overlap — so two domains hammering different intervals cause
   exactly zero blocked region acquisitions. *)
let test_optimistic_writes_no_region_waits () =
  let keys_per_domain = 256 in
  let m =
    SM.create
      ~splitters:(List.init 7 (fun i -> (i + 1) * keys_per_domain))
      ()
  in
  for d = 0 to 1 do
    for i = 0 to keys_per_domain - 1 do
      ignore (SM.put m ((d * keys_per_domain) + i) 0)
    done
  done;
  let waits_before = Stm.commit_region_waits () in
  let worker d () =
    let base = d * keys_per_domain in
    for i = 0 to 499 do
      Stm.atomic (fun () -> ignore (SM.put m (base + (i mod keys_per_domain)) i))
    done
  in
  let doms = List.init 2 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join doms;
  Alcotest.(check int) "no blocked region acquisitions" 0
    (Stm.commit_region_waits () - waits_before)

(* The same ordered-operation script against B = 1 and a partitioned map
   must produce identical observations: merged iteration, endpoints and
   size are linearizable across interval boundaries. *)
let test_sorted_single_thread_equivalence () =
  let script m =
    Stm.atomic (fun () ->
        for i = 0 to 99 do
          ignore (SM.put m i (i * 3))
        done);
    let obs1 =
      Stm.atomic (fun () ->
          ignore (SM.remove m 0);
          ignore (SM.remove m 99);
          ignore (SM.put m 250 7);
          (* Buffered writes merged with committed state across boundaries. *)
          let ordered = SM.fold_range (fun k _ acc -> k :: acc) m [] ~lo:(Some 20) ~hi:(Some 60) in
          (SM.first_key m, SM.last_key m, SM.size m, List.rev ordered))
    in
    let cursor_keys =
      Stm.atomic (fun () ->
          let c = SM.cursor ~lo:15 m in
          let rec go acc =
            match SM.cursor_next c with
            | Some (k, _) -> go (k :: acc)
            | None -> List.rev acc
          in
          go [])
    in
    (obs1, cursor_keys, SM.to_list m)
  in
  let r1 = script (SM.create ()) in
  let r4 = script (SM.create ~splitters:[ 25; 50; 75 ] ()) in
  Alcotest.(check bool) "observations identical across B" true (r1 = r4)

(* ---------------- multi-domain striped soak ---------------- *)

let test_striped_soak_matrix () =
  List.iter
    (fun seed ->
      List.iter
        (fun stripes ->
          let r =
            Chaos.run_striped_soak ~stripes
              (Chaos.default_soak ~domains:2 ~ops_per_domain:600 ~seed 0.05)
          in
          if not r.ok then
            Alcotest.failf "striped soak seed=%d K=%d: %s" seed stripes
              (String.concat "; " r.errors);
          Alcotest.(check bool)
            (Printf.sprintf "work committed (seed=%d K=%d)" seed stripes)
            true (r.committed > 0))
        [ 1; 4; 16 ])
    [ 11; 12 ]

let test_striped_soak_deterministic () =
  let soak () =
    Chaos.run_striped_soak ~stripes:8
      (Chaos.default_soak ~domains:1 ~ops_per_domain:800 ~seed:5 0.1)
  in
  let a = soak () and b = soak () in
  Alcotest.(check bool) "run A converged" true a.ok;
  Alcotest.(check bool) "run B converged" true b.ok;
  Alcotest.(check string) "same seed, same fingerprint" a.fingerprint
    b.fingerprint

let suites =
  [
    ( "striping",
      [
        Alcotest.test_case "map lock rows K-invariant" `Quick
          test_map_rows_stripe_invariant;
        Alcotest.test_case "sorted lock rows interval-invariant" `Quick
          test_sorted_rows_interval_invariant;
        Alcotest.test_case "sorted B=1 rows match pre-PR baseline" `Quick
          test_sorted_rows_b1_baseline;
        Alcotest.test_case "commit plans interval-scoped" `Quick
          test_commit_plan_interval_scoped;
        Alcotest.test_case "optimistic writes cause no region waits" `Quick
          test_optimistic_writes_no_region_waits;
        Alcotest.test_case "sorted single-thread equivalence across B" `Quick
          test_sorted_single_thread_equivalence;
        Alcotest.test_case "queue rows unchanged" `Quick test_queue_rows_unchanged;
        Alcotest.test_case "single-thread equivalence" `Quick
          test_single_thread_equivalence;
        Alcotest.test_case "stripe count clamped" `Quick test_stripe_count_clamped;
        Alcotest.test_case "cursor range locks bounded" `Quick
          test_cursor_range_locks_bounded;
        Alcotest.test_case "repeated folds coalesce" `Quick
          test_repeated_folds_coalesce;
        Alcotest.test_case "striped soak (2 seeds x 3 K)" `Slow
          test_striped_soak_matrix;
        Alcotest.test_case "striped soak deterministic" `Quick
          test_striped_soak_deterministic;
      ] );
  ]
