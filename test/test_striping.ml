(* Striping must change contention, never semantics: the traced lock rows
   of Tables 2 and 5 are identical for every stripe count, single-threaded
   behaviour is identical across K, range locks stay bounded under
   incremental cursors (the coalescing regression), and the multi-domain
   chaos soak converges when every worker targets one shared striped
   map. *)

module Stm = Tcc_stm.Stm
module LT = Harness.Locktables
module Chaos = Harness.Chaos
module IM = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module SM = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)

let ks = [ 1; 4; 16 ]

(* ---------------- Tables 2/5: lock rows are K-invariant ---------------- *)

let map_ops : (string * (int LT.IM.t -> unit)) list =
  [
    ("containsKey(10) [present]", fun m -> ignore (LT.IM.mem m 10));
    ("containsKey(77) [absent]", fun m -> ignore (LT.IM.mem m 77));
    ("get(10)", fun m -> ignore (LT.IM.find m 10));
    ("size", fun m -> ignore (LT.IM.size m));
    ("isEmpty", fun m -> ignore (LT.IM.is_empty m));
    ("entrySet iteration", fun m -> ignore (LT.IM.to_list m));
    ("put(10, v)", fun m -> ignore (LT.IM.put m 10 0));
    ("put(77, v) [new key]", fun m -> ignore (LT.IM.put m 77 0));
    ("putBlind(10, v)", fun m -> LT.IM.put_blind m 10 0);
    ("remove(10)", fun m -> ignore (LT.IM.remove m 10));
    ("removeBlind(10)", fun m -> LT.IM.remove_blind m 10);
  ]

let sorted_ops : (string * (int LT.SM.t -> unit)) list =
  [
    ("firstKey", fun m -> ignore (LT.SM.first_key m));
    ("lastKey", fun m -> ignore (LT.SM.last_key m));
    ("entrySet iteration", fun m -> ignore (LT.SM.to_list m));
    ( "subMap(15,25) iteration",
      fun m ->
        ignore (LT.SM.fold_range (fun _ _ a -> a) m () ~lo:(Some 15) ~hi:(Some 25)) );
    ("get(10)", fun m -> ignore (LT.SM.find m 10));
    ("put(77, v) [new key]", fun m -> ignore (LT.SM.put m 77 0));
    ("remove(10)", fun m -> ignore (LT.SM.remove m 10));
  ]

let test_map_rows_stripe_invariant () =
  List.iter
    (fun (name, op) ->
      let baseline = LT.probe_map ~stripes:1 op in
      List.iter
        (fun k ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s locks identical at K=%d" name k)
            baseline
            (LT.probe_map ~stripes:k op))
        ks)
    map_ops

let test_sorted_rows_stripe_invariant () =
  List.iter
    (fun (name, op) ->
      let baseline = LT.probe_sorted ~stripes:1 op in
      List.iter
        (fun k ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s locks identical at K=%d" name k)
            baseline
            (LT.probe_sorted ~stripes:k op))
        ks)
    sorted_ops

(* Table 8 has no striped variant (the queue is deliberately K = 1), but
   the rows must still trace as specified with the lock manager striped
   underneath the shared Semlock functor. *)
let test_queue_rows_unchanged () =
  let module Q = Txcoll.Host.Queue in
  Alcotest.(check (list string))
    "peek on empty takes the empty lock" [ "empty" ]
    (LT.probe_queue ~empty:true (fun q -> ignore (Q.peek q)));
  Alcotest.(check (list string))
    "peek on non-empty takes nothing" []
    (LT.probe_queue ~empty:false (fun q -> ignore (Q.peek q)))

(* ---------------- behavioural equivalence across K ---------------- *)

let test_single_thread_equivalence () =
  (* The same operation script against K = 1 and K = 16 must produce the
     same observable results and the same final contents. *)
  let script m =
    Stm.atomic (fun () ->
        for i = 0 to 63 do
          ignore (IM.put m i (i * i))
        done);
    let obs1 =
      Stm.atomic (fun () ->
          let a = IM.find m 17 in
          ignore (IM.remove m 17);
          let b = IM.find m 17 in
          (a, b, IM.size m))
    in
    let obs2 =
      Stm.atomic (fun () ->
          IM.fold (fun k v acc -> acc + k + v) m 0)
    in
    (obs1, obs2, List.sort compare (IM.to_list m))
  in
  let r1 = script (IM.create ~stripes:1 ()) in
  let r16 = script (IM.create ~stripes:16 ()) in
  let (a1, b1, s1), f1, l1 = r1 and (a16, b16, s16), f16, l16 = r16 in
  Alcotest.(check (option int)) "find before remove" a1 a16;
  Alcotest.(check (option int)) "find after remove" b1 b16;
  Alcotest.(check int) "size" s1 s16;
  Alcotest.(check int) "fold" f1 f16;
  Alcotest.(check bool) "contents identical" true (l1 = l16)

let test_stripe_count_clamped () =
  Alcotest.(check int) "default" 16 (IM.stripe_count (IM.create ()));
  Alcotest.(check int) "explicit" 4 (IM.stripe_count (IM.create ~stripes:4 ()));
  Alcotest.(check int) "clamped low" 1 (IM.stripe_count (IM.create ~stripes:0 ()));
  Alcotest.(check int) "clamped high" 62
    (IM.stripe_count (IM.create ~stripes:1000 ()));
  Alcotest.(check int) "sorted default" 8 (SM.stripe_count (SM.create ()))

(* ---------------- range-lock growth regression ---------------- *)

let test_cursor_range_locks_bounded () =
  (* An incremental cursor extends its range lock one binding at a time;
     coalescing must keep the registered count O(1), not O(keys seen). *)
  let m = SM.create ~stripes:4 () in
  Stm.atomic (fun () ->
      for i = 1 to 200 do
        ignore (SM.put m i i)
      done);
  let seen = ref 0 in
  let worst = ref 0 in
  (try
     Stm.atomic (fun () ->
         let c = SM.cursor m in
         let rec go () =
           match SM.cursor_next c with
           | Some _ ->
               incr seen;
               worst := max !worst (SM.outstanding_range_locks m);
               go ()
           | None -> ()
         in
         go ();
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "cursor visited every binding" 200 !seen;
  Alcotest.(check bool)
    (Printf.sprintf "range locks stay bounded (worst %d)" !worst)
    true (!worst <= 2);
  Alcotest.(check int) "released on abort" 0 (SM.outstanding_range_locks m)

let test_repeated_folds_coalesce () =
  let m = SM.create () in
  Stm.atomic (fun () ->
      for i = 1 to 100 do
        ignore (SM.put m i i)
      done);
  (try
     Stm.atomic (fun () ->
         (* Overlapping and adjacent spans from one transaction: one entry. *)
         for lo = 0 to 9 do
           ignore
             (SM.fold_range
                (fun _ _ a -> a)
                m ()
                ~lo:(Some (lo * 10))
                ~hi:(Some ((lo * 10) + 15)))
         done;
         Alcotest.(check int) "ten overlapping folds, one range entry" 1
           (SM.outstanding_range_locks m);
         Stm.self_abort ())
   with Stm.Aborted -> ());
  Alcotest.(check int) "released" 0 (SM.outstanding_range_locks m)

(* ---------------- multi-domain striped soak ---------------- *)

let test_striped_soak_matrix () =
  List.iter
    (fun seed ->
      List.iter
        (fun stripes ->
          let r =
            Chaos.run_striped_soak ~stripes
              (Chaos.default_soak ~domains:2 ~ops_per_domain:600 ~seed 0.05)
          in
          if not r.ok then
            Alcotest.failf "striped soak seed=%d K=%d: %s" seed stripes
              (String.concat "; " r.errors);
          Alcotest.(check bool)
            (Printf.sprintf "work committed (seed=%d K=%d)" seed stripes)
            true (r.committed > 0))
        [ 1; 4; 16 ])
    [ 11; 12 ]

let test_striped_soak_deterministic () =
  let soak () =
    Chaos.run_striped_soak ~stripes:8
      (Chaos.default_soak ~domains:1 ~ops_per_domain:800 ~seed:5 0.1)
  in
  let a = soak () and b = soak () in
  Alcotest.(check bool) "run A converged" true a.ok;
  Alcotest.(check bool) "run B converged" true b.ok;
  Alcotest.(check string) "same seed, same fingerprint" a.fingerprint
    b.fingerprint

let suites =
  [
    ( "striping",
      [
        Alcotest.test_case "map lock rows K-invariant" `Quick
          test_map_rows_stripe_invariant;
        Alcotest.test_case "sorted lock rows K-invariant" `Quick
          test_sorted_rows_stripe_invariant;
        Alcotest.test_case "queue rows unchanged" `Quick test_queue_rows_unchanged;
        Alcotest.test_case "single-thread equivalence" `Quick
          test_single_thread_equivalence;
        Alcotest.test_case "stripe count clamped" `Quick test_stripe_count_clamped;
        Alcotest.test_case "cursor range locks bounded" `Quick
          test_cursor_range_locks_bounded;
        Alcotest.test_case "repeated folds coalesce" `Quick
          test_repeated_folds_coalesce;
        Alcotest.test_case "striped soak (2 seeds x 3 K)" `Slow
          test_striped_soak_matrix;
        Alcotest.test_case "striped soak deterministic" `Quick
          test_striped_soak_deterministic;
      ] );
  ]
