(* Direct tests of the semantic lock manager: acquisition/release balance,
   conflict targeting, range overlap, and a randomized consistency property
   against a reference model. *)

module L = Txcoll.Semlock.Make (Tcc_stm.Stm.Tm_ops)
module Stm = Tcc_stm.Stm

(* Fabricate distinct transaction handles.  [Stm.current] outside a
   transaction returns a per-domain cached auto-commit handle, and
   top-level descriptors are pooled per domain — a handle minted by a
   finished transaction on this domain would be recycled (with a fresh
   txn_id) by the next transaction here.  Minting in a throwaway domain
   pins the descriptor: its pool dies with the domain, so the handle's
   identity is stable, as it is for any live lock owner. *)
let handle () =
  Domain.join (Domain.spawn (fun () -> Stm.atomic (fun () -> Stm.current ())))

let test_acquire_release_balance () =
  let t : int L.t = L.create () in
  let a = handle () and b = handle () in
  L.lock_key t a 1;
  L.lock_key t b 1;
  L.lock_key t a 2;
  L.lock_size t a;
  L.lock_range t b ~compare:Int.compare { L.lo = Some 0; hi = Some 10 };
  Alcotest.(check int) "five locks held" 5 (L.total_lockers t);
  L.release_all t a ~keys:[ 1; 2 ];
  Alcotest.(check int) "a's locks gone" 2 (L.total_lockers t);
  Alcotest.(check bool) "b still holds key 1" true (L.key_locked_by t b 1);
  L.release_all t b ~keys:[ 1 ];
  Alcotest.(check int) "empty" 0 (L.total_lockers t)

let test_idempotent_acquire () =
  let t : int L.t = L.create () in
  let a = handle () in
  L.lock_key t a 1;
  L.lock_key t a 1;
  L.lock_size t a;
  L.lock_size t a;
  Alcotest.(check int) "deduplicated" 2 (L.total_lockers t)

let test_range_overlap_semantics () =
  let t : int L.t = L.create () in
  let a = handle () in
  L.lock_range t a ~compare:Int.compare { L.lo = Some 10; hi = Some 20 };
  let contains k = L.range_contains Int.compare { L.lo = Some 10; hi = Some 20 } k in
  Alcotest.(check bool) "lo inclusive" true (contains 10);
  Alcotest.(check bool) "hi exclusive" false (contains 20);
  Alcotest.(check bool) "inside" true (contains 15);
  Alcotest.(check bool) "below" false (contains 9);
  let unbounded = { L.lo = None; hi = None } in
  Alcotest.(check bool) "unbounded contains all" true
    (L.range_contains Int.compare unbounded min_int)

let test_writer_entry () =
  let t : int L.t = L.create () in
  let a = handle () and b = handle () in
  L.lock_key_write t a 5;
  Alcotest.(check bool) "writer recorded" true (L.key_writer t 5 <> None);
  Alcotest.(check bool) "writer counts as locked_by" true (L.key_locked_by t a 5);
  Alcotest.(check bool) "not for others" false (L.key_locked_by t b 5);
  L.release_all t a ~keys:[ 5 ];
  Alcotest.(check bool) "writer released" true (L.key_writer t 5 = None);
  Alcotest.(check int) "table empty" 0 (L.total_lockers t)

(* Regression: a second transaction write-locking the same key must not
   displace the first — both stay registered, so the displaced writer's
   write-write conflict is still visible at commit time (the pre-fix code
   silently deregistered the first writer). *)
let test_multiple_writers_tracked () =
  let t : int L.t = L.create () in
  let a = handle () and b = handle () in
  L.lock_key_write t a 5;
  L.lock_key_write t b 5;
  Alcotest.(check int) "both writers registered" 2 (L.total_lockers t);
  Alcotest.(check bool) "a still locked_by" true (L.key_locked_by t a 5);
  Alcotest.(check bool) "b locked_by" true (L.key_locked_by t b 5);
  Alcotest.(check bool) "a sees a foreign writer" true
    (L.key_has_foreign_writer t ~self:a 5);
  Alcotest.(check bool) "b sees a foreign writer" true
    (L.key_has_foreign_writer t ~self:b 5);
  (* Releasing b must leave a's write lock intact (pre-fix, a's entry was
     already gone and the table leaked b's writer count instead). *)
  L.release_all t b ~keys:[ 5 ];
  Alcotest.(check bool) "a survives b's release" true (L.key_locked_by t a 5);
  Alcotest.(check bool) "a is the remaining writer" true
    (L.key_writer t 5 <> None);
  Alcotest.(check bool) "no foreign writer for a now" false
    (L.key_has_foreign_writer t ~self:a 5);
  L.release_all t a ~keys:[ 5 ];
  Alcotest.(check int) "table empty" 0 (L.total_lockers t);
  Alcotest.(check int) "no key entries leak" 0 (L.key_entry_count t)

let test_range_coalescing () =
  let t : int L.t = L.create () in
  let a = handle () and b = handle () in
  let lock owner r = L.lock_range t owner ~compare:Int.compare r in
  (* Duplicate and overlapping ranges collapse into one entry. *)
  lock a { L.lo = Some 0; hi = Some 10 };
  lock a { L.lo = Some 0; hi = Some 10 };
  lock a { L.lo = Some 5; hi = Some 15 };
  Alcotest.(check int) "duplicates+overlaps coalesce" 1 (L.range_locker_count t);
  (* Adjacent half-open ranges ([10,20) after [0,15)->[0,15)) merge too. *)
  lock a { L.lo = Some 15; hi = Some 20 };
  Alcotest.(check int) "adjacent ranges merge" 1 (L.range_locker_count t);
  Alcotest.(check bool) "merged range covers the union" true
    (L.range_contains Int.compare { L.lo = Some 0; hi = Some 20 } 17);
  (* A separated range stays its own entry... *)
  lock a { L.lo = Some 100; hi = Some 110 };
  Alcotest.(check int) "gap keeps two entries" 2 (L.range_locker_count t);
  (* ...until a bridging range connects everything (one pass must absorb
     both existing entries). *)
  lock a { L.lo = Some 10; hi = Some 105 };
  Alcotest.(check int) "bridge collapses to one" 1 (L.range_locker_count t);
  (* Unbounded swallows everything. *)
  lock a { L.lo = None; hi = None };
  Alcotest.(check int) "unbounded coalesces" 1 (L.range_locker_count t);
  (* Per-owner isolation: another owner's range is a separate entry. *)
  lock b { L.lo = Some 0; hi = Some 1 };
  Alcotest.(check int) "per-owner entries" 2 (L.range_locker_count t);
  L.release_all t a ~keys:[];
  L.release_all t b ~keys:[];
  Alcotest.(check int) "released" 0 (L.range_locker_count t)

let test_striped_geometry () =
  let t : int L.t = L.create ~stripes:4 () in
  Alcotest.(check int) "stripe count" 4 (L.stripe_count t);
  for k = 0 to 100 do
    let i = L.stripe_index t k in
    Alcotest.(check bool) "index in range" true (i >= 0 && i < 4)
  done;
  (* Lock bookkeeping is unchanged by striping. *)
  let a = handle () and b = handle () in
  L.lock_key t a 1;
  L.lock_key t b 1;
  L.lock_key t a 2;
  L.lock_size t a;
  Alcotest.(check int) "four locks held" 4 (L.total_lockers t);
  Alcotest.(check bool) "a holds key 1" true (L.key_locked_by t a 1);
  L.release_all t a ~keys:[ 1; 2 ];
  Alcotest.(check int) "b's lock remains" 1 (L.total_lockers t);
  L.release_all t b ~keys:[ 1 ];
  Alcotest.(check int) "empty" 0 (L.total_lockers t);
  (* K = 1 shares the structure region with its only stripe; K > 1 has
     distinct regions per stripe. *)
  let t1 : int L.t = L.create ~stripes:1 () in
  Alcotest.(check bool) "K=1 stripe region is the struct region" true
    (L.stripe_region t1 0 == L.struct_region t1);
  Alcotest.(check bool) "K>1 stripes are distinct regions" true
    (L.stripe_region t 0 != L.stripe_region t 1)

let test_interval_geometry () =
  (* Splitters arrive unsorted with duplicates: table sorts/dedups to
     [10; 20; 30] = 4 intervals. *)
  let t : int L.t =
    L.create_intervals ~splitters:[| 30; 10; 20; 20 |] ~compare:Int.compare ()
  in
  Alcotest.(check int) "four intervals" 4 (L.stripe_count t);
  Alcotest.(check int) "below first splitter" 0 (L.stripe_index t 9);
  Alcotest.(check int) "splitter starts its interval" 1 (L.stripe_index t 10);
  Alcotest.(check int) "mid interval" 2 (L.stripe_index t 25);
  Alcotest.(check int) "last splitter" 3 (L.stripe_index t 30);
  Alcotest.(check int) "unbounded top" 3 (L.stripe_index t 1000);
  let span lo hi = L.interval_span t ~lo ~hi in
  Alcotest.(check (pair int int)) "unbounded span" (0, 3) (span None None);
  Alcotest.(check (pair int int)) "inside one" (1, 1) (span (Some 12) (Some 18));
  Alcotest.(check (pair int int)) "boundary-aligned stays inside" (1, 1)
    (span (Some 10) (Some 20));
  Alcotest.(check (pair int int)) "crossing" (0, 2) (span (Some 5) (Some 21));
  Alcotest.(check (pair int int)) "unbounded hi hits the edge" (2, 3)
    (span (Some 20) None);
  Alcotest.(check (pair int int)) "empty range clamps to one stripe" (2, 2)
    (span (Some 25) (Some 5));
  let t1 : int L.t = L.create_intervals ~splitters:[||] ~compare:Int.compare () in
  Alcotest.(check bool) "B=1 stripe region is the struct region" true
    (L.stripe_region t1 0 == L.struct_region t1)

(* Satellite: under coalescing, the registered ranges must cover exactly
   the keys the raw fragments cover — [range_covered_by] is the predicate
   [conflict_range] uses to pick abort victims, so identical coverage
   means identical abort verdicts.  And the registered count must return
   to zero after each lock/release cycle (no drift), in both partition
   modes. *)
let prop_range_coalescing_exact =
  QCheck.Test.make ~name:"coalesced ranges match raw-fragment verdicts"
    ~count:80
    QCheck.(list (pair (option (int_bound 100)) (option (int_bound 100))))
    (fun script ->
      let tables : (string * int L.t) list =
        [
          ("hashed", L.create ());
          ( "intervals",
            L.create_intervals ~splitters:[| 25; 50; 75 |] ~compare:Int.compare
              () );
        ]
      in
      let a = handle () in
      let raw = List.map (fun (lo, hi) -> { L.lo; hi }) script in
      List.for_all
        (fun (_name, t) ->
          let ok = ref true in
          (* Two cycles: counts must not drift across lock/release. *)
          for _cycle = 1 to 2 do
            List.iter (fun r -> L.lock_range t a ~compare:Int.compare r) raw;
            for k = -2 to 102 do
              let covered = L.range_covered_by t a ~compare:Int.compare k in
              let expected =
                List.exists (fun r -> L.range_contains Int.compare r k) raw
              in
              if covered <> expected then ok := false
            done;
            L.release_all t a ~keys:[];
            if L.range_locker_count t <> 0 then ok := false
          done;
          !ok)
        tables)

let prop_model_consistency =
  QCheck.Test.make ~name:"lock table agrees with reference model" ~count:150
    QCheck.(list (triple (int_bound 3) (int_bound 7) bool))
    (fun script ->
      let t : int L.t = L.create () in
      let owners = Array.init 4 (fun _ -> handle ()) in
      (* model: (owner_index, key) set for key locks *)
      let model = Hashtbl.create 16 in
      List.iter
        (fun (o, k, acquire) ->
          if acquire then begin
            L.lock_key t owners.(o) k;
            Hashtbl.replace model (o, k) ()
          end
          else begin
            (* release everything owner [o] holds *)
            let keys =
              Hashtbl.fold
                (fun (o', k') () acc -> if o' = o then k' :: acc else acc)
                model []
            in
            L.release_all t owners.(o) ~keys;
            List.iter (fun k' -> Hashtbl.remove model (o, k')) keys
          end)
        script;
      Hashtbl.length model = L.total_lockers t
      && Hashtbl.fold
           (fun (o, k) () ok -> ok && L.key_locked_by t owners.(o) k)
           model true)

let suites =
  [
    ( "semlock",
      [
        Alcotest.test_case "acquire/release balance" `Quick
          test_acquire_release_balance;
        Alcotest.test_case "idempotent acquire" `Quick test_idempotent_acquire;
        Alcotest.test_case "range semantics" `Quick test_range_overlap_semantics;
        Alcotest.test_case "range coalescing" `Quick test_range_coalescing;
        Alcotest.test_case "striped geometry" `Quick test_striped_geometry;
        Alcotest.test_case "interval geometry" `Quick test_interval_geometry;
        Alcotest.test_case "writer entries" `Quick test_writer_entry;
        Alcotest.test_case "multiple writers tracked" `Quick
          test_multiple_writers_tracked;
        QCheck_alcotest.to_alcotest prop_range_coalescing_exact;
        QCheck_alcotest.to_alcotest prop_model_consistency;
      ] );
  ]
