(* Soak test: a miniature application combining every collection class on
   several domains, with injected aborts — run longer than the unit tests,
   then audited for every invariant at once.

   The application: a dispatch centre.
   - [jobs]    : TransactionalQueue of work items (producers put, workers take)
   - [status]  : TransactionalMap   job id -> state (0 queued, 1 done)
   - [ledger]  : TransactionalSortedMap completion-stamp -> job id
   - [billing] : tvar counter of completed work, open-nested w/ compensation

   Each worker transaction takes a job, marks it done, appends a ledger
   entry with a unique stamp, and bumps billing — all atomically.  Some
   transactions self-abort after doing all of that; compensation must put
   the job back and undo the billing. *)

module Stm = Tcc_stm.Stm
module Q = Txcoll.Host.Queue
module StatusMap = Txcoll.Host.Map (Txcoll.Host.Int_hashed)
module Ledger = Txcoll.Host.Sorted_map (Txcoll.Host.Int_ordered)
module Counter = Stm_ds.Stm_counter
module Uidgen = Stm_ds.Stm_uidgen

let n_jobs = 600

let test_dispatch_centre () =
  let jobs = Q.create () in
  let status = StatusMap.create () in
  let ledger = Ledger.create () in
  let billing = Counter.create () in
  let stamps = Uidgen.create ~first:1 () in

  let producer_done = Atomic.make false in
  let producer () =
    for j = 1 to n_jobs do
      Stm.atomic (fun () ->
          ignore (StatusMap.put status j 0);
          Q.put jobs j)
    done;
    Atomic.set producer_done true
  in

  let completed = Atomic.make 0 in
  let injected = Atomic.make 0 in
  let worker seed () =
    let rng = Random.State.make [| seed |] in
    let idle = ref 0 in
    (* Spin freely while the producer is still enqueueing (on few cores a
       worker can otherwise exhaust its idle budget before any job lands);
       only idle iterations after production completes count toward exit. *)
    while !idle < 3000 do
      if not (Atomic.get producer_done) then idle := 0;
      let progressed =
        try
          Stm.atomic (fun () ->
              match Q.take jobs with
              | None -> false
              | Some j ->
                  ignore (StatusMap.put status j 1);
                  let stamp = Uidgen.next stamps in
                  ignore (Ledger.put ledger stamp j);
                  Counter.incr_open billing;
                  if Random.State.int rng 12 = 0 then begin
                    Atomic.incr injected;
                    Stm.self_abort ()
                  end;
                  true)
        with Stm.Aborted -> true
      in
      if progressed then begin
        idle := 0;
        Atomic.incr completed
      end
      else incr idle
    done
  in

  let ds =
    [ Domain.spawn producer; Domain.spawn (worker 31); Domain.spawn (worker 77) ]
  in
  List.iter Domain.join ds;
  (* Drain anything still queued (jobs returned by aborted workers). *)
  let rec drain () =
    let more =
      Stm.atomic (fun () ->
          match Q.take jobs with
          | None -> false
          | Some j ->
              ignore (StatusMap.put status j 1);
              let stamp = Uidgen.next stamps in
              ignore (Ledger.put ledger stamp j);
              Counter.incr_open billing;
              true)
    in
    if more then drain ()
  in
  drain ();

  (* Invariants. *)
  Alcotest.(check int) "every job has a status row" n_jobs (StatusMap.size status);
  let done_jobs =
    StatusMap.fold (fun _ st acc -> if st = 1 then acc + 1 else acc) status 0
  in
  Alcotest.(check int) "every job completed" n_jobs done_jobs;
  Alcotest.(check int) "ledger rows equal completions" n_jobs (Ledger.size ledger);
  Alcotest.(check int) "billing equals completions" n_jobs (Counter.get billing);
  (* Each job appears in the ledger exactly once (aborted attempts left no
     ledger rows). *)
  let seen = Hashtbl.create 64 in
  Ledger.iter (fun _stamp j -> Hashtbl.replace seen j ()) ledger;
  Alcotest.(check int) "no duplicated ledger jobs" n_jobs (Hashtbl.length seen);
  Alcotest.(check int) "no stale map locks" 0 (StatusMap.outstanding_locks status);
  Alcotest.(check int) "no stale ledger locks" 0 (Ledger.outstanding_locks ledger);
  Alcotest.(check bool) "aborts were injected" true (Atomic.get injected > 0)

let suites =
  [
    ( "soak",
      [ Alcotest.test_case "dispatch centre" `Slow test_dispatch_centre ] );
  ]
